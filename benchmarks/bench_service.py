"""Benchmark: valuation-service load — N concurrent tenants over HTTP.

Exercises the whole service stack end to end: a :class:`ValuationService`
with four scheduler workers behind the stdlib HTTP server, N tenants
submitting the paper's standard IPSS workload (n = 10 clients, γ = 32 from
Table III) plus an MC-Shapley job each, every job watched over a live SSE
stream exactly as a real client would.

Per tenant the job mix is:

* one cold IPSS job (tenant-specific seed — nothing cached);
* one duplicate IPSS submit (store affinity serialises it behind the cold
  one, which turns it into a warm re-run: zero trainings, all store hits);
* one MC-Shapley job on a different seed (the long-running tail).

Measured: jobs/sec over the whole burst, p50/p99 first-snapshot latency
(submit → first SSE ``snapshot`` frame, per job), warm-store hit rate, and
the maximum number of simultaneously running jobs (sampled via /healthz).

Acceptance: ≥4 jobs progressing concurrently, p99 first-snapshot < 5 s, and
zero duplicated trainings in the service ledger.  Results land under
``benchmarks/results/service_load.{txt,json}``.
"""

from __future__ import annotations

import threading
import time

from repro.experiments.reporting import format_table
from repro.service.client import ServiceClient
from repro.service.scheduler import ValuationService
from repro.service.server import serve

from conftest import run_once, save_report
from harness import BenchResult, save_bench_json

N_TENANTS = 4
WORKERS = 4
N_CLIENTS = 10  # paper grid: γ = 32 sampling rounds at n = 10
SAMPLE_SECONDS = 0.02

#: the ISSUE's acceptance gates for the committed results
MIN_CONCURRENT_JOBS = 4
MAX_P99_FIRST_SNAPSHOT_SECONDS = 5.0


def _task(seed):
    return {
        "kind": "synthetic",
        "setup": "same-size-same-distribution",
        "n_clients": N_CLIENTS,
        "seed": seed,
    }


class _JobWatch(threading.Thread):
    """One client-side SSE stream: records the first-snapshot latency."""

    def __init__(self, client, job_id, submitted_at):
        super().__init__(name=f"watch-{job_id}", daemon=True)
        self.client = client
        self.job_id = job_id
        self.submitted_at = submitted_at
        self.first_snapshot_seconds = None

    def run(self):
        for event in self.client.stream(self.job_id):
            if event.get("event") == "snapshot" and self.first_snapshot_seconds is None:
                self.first_snapshot_seconds = time.perf_counter() - self.submitted_at
            if event.get("event") in ("result", "failed", "cancelled"):
                return


class _ConcurrencySampler(threading.Thread):
    """Samples /healthz and records the peak number of running jobs."""

    def __init__(self, client):
        super().__init__(name="concurrency-sampler", daemon=True)
        self.client = client
        self.max_running = 0
        self._done = threading.Event()

    def run(self):
        while not self._done.wait(SAMPLE_SECONDS):
            counts = self.client.health()["jobs"]
            self.max_running = max(self.max_running, counts.get("running", 0))

    def stop(self):
        self._done.set()
        self.join(timeout=5.0)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_load(state_dir):
    service = ValuationService(str(state_dir), workers=WORKERS).start()
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
    )
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    client = ServiceClient(url, timeout=120.0)
    sampler = _ConcurrencySampler(ServiceClient(url, timeout=30.0))
    sampler.start()
    try:
        started = time.perf_counter()
        watches = []

        def submit(tenant, task, algorithm):
            submitted_at = time.perf_counter()
            record = client.submit(
                {"task": task, "algorithm": algorithm, "tenant": tenant}
            )
            watch = _JobWatch(
                ServiceClient(url, timeout=120.0), record["job_id"], submitted_at
            )
            watch.start()
            watches.append(watch)
            return record["job_id"]

        # The short jobs go in first so no worker idles behind the MC tail.
        for index in range(N_TENANTS):
            tenant = f"tenant-{index}"
            submit(tenant, _task(seed=index), "IPSS")
            submit(tenant, _task(seed=index), "IPSS")  # the warm duplicate
        for index in range(N_TENANTS):
            submit(f"tenant-{index}", _task(seed=100 + index), "MC-Shapley")

        job_ids = [watch.job_id for watch in watches]
        records = {job_id: client.wait(job_id, timeout=300.0) for job_id in job_ids}
        wall = time.perf_counter() - started
        for watch in watches:
            watch.join(timeout=30.0)
    finally:
        sampler.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        total, distinct = service.jobs.training_counts()
        service.stop()

    assert all(r["status"] == "done" for r in records.values()), {
        job_id: r["status"] for job_id, r in records.items()
    }
    latencies = [w.first_snapshot_seconds for w in watches]
    assert all(latency is not None for latency in latencies)
    trainings = sum(r["fl_trainings"] for r in records.values())
    hits = sum(r["store_hits"] for r in records.values())
    return {
        "jobs": len(job_ids),
        "wall_seconds": wall,
        "jobs_per_second": len(job_ids) / wall,
        "first_snapshot_p50_s": _percentile(latencies, 0.50),
        "first_snapshot_p99_s": _percentile(latencies, 0.99),
        "max_concurrent_running": sampler.max_running,
        "fl_trainings": trainings,
        "store_hits": hits,
        "warm_hit_rate": hits / (hits + trainings),
        "ledger_total": total,
        "ledger_distinct": distinct,
    }


def test_service_load(benchmark, results_dir, tmp_path):
    measured = run_once(benchmark, _run_load, tmp_path / "state")

    # The ISSUE's gates on the committed numbers.
    assert measured["max_concurrent_running"] >= MIN_CONCURRENT_JOBS, (
        f"only {measured['max_concurrent_running']} jobs ever ran concurrently"
    )
    assert measured["first_snapshot_p99_s"] < MAX_P99_FIRST_SNAPSHOT_SECONDS, (
        f"p99 first-snapshot latency {measured['first_snapshot_p99_s']:.2f}s"
    )
    assert measured["ledger_total"] == measured["ledger_distinct"], (
        f"{measured['ledger_total'] - measured['ledger_distinct']} duplicated trainings"
    )

    benchmark.extra_info.update(measured)
    text = format_table(
        [
            {
                "workload": f"{N_TENANTS} tenants x 3 jobs",
                "jobs": measured["jobs"],
                "jobs/s": f"{measured['jobs_per_second']:.2f}",
                "p50 first-snap (ms)": f"{measured['first_snapshot_p50_s'] * 1000:.0f}",
                "p99 first-snap (ms)": f"{measured['first_snapshot_p99_s'] * 1000:.0f}",
                "max running": measured["max_concurrent_running"],
                "warm hit rate": f"{measured['warm_hit_rate']:.2f}",
                "ledger total/distinct": (
                    f"{measured['ledger_total']}/{measured['ledger_distinct']}"
                ),
            }
        ],
        title="valuation-service load (HTTP + SSE, stdlib server)",
    )
    save_report(results_dir, "service_load", text)
    save_bench_json(
        results_dir,
        "service_load",
        [
            BenchResult(
                name="service-load",
                config={
                    "tenants": N_TENANTS,
                    "workers": WORKERS,
                    "n_clients": N_CLIENTS,
                    "job_mix": "IPSS cold + IPSS warm duplicate + MC-Shapley",
                    "transport": "HTTP + SSE (stdlib server, ephemeral port)",
                },
                wall_time_s=measured["wall_seconds"],
                metrics={
                    key: value
                    for key, value in measured.items()
                    if key != "wall_seconds"
                },
            )
        ],
    )
