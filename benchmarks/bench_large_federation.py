"""Benchmark: large-federation mode — IPSS valuing up to 500 clients.

The large-federation execution path (lazy coalition plans, RAM-budgeted
vectorized batches, hashed store keys) exists so valuation cost scales with
the sampling budget γ, never with anything C(n, k)-shaped.  This benchmark
sweeps n ∈ {10, 50, 100, 250, 500} on the same-size synthetic task at tiny
scale, running IPSS with the paper's default budget γ(n) = ⌈n·ln n⌉ under
CI-width stopping, and records the two scaling curves the mode is judged by:

* time-vs-n — wall time per federation size;
* peak-RSS-vs-n — tracemalloc peak per run (plus ``ru_maxrss`` when the
  suite runs with ``--peak-rss``), which must grow sub-linearly in the
  phase-2 stratum size C(n, k*+1): at n=500 the stratum holds ~124k
  coalitions, the resident plan only ever holds the γ-bounded sample.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.core import IPSS, ConvergenceRule
from repro.experiments import sampling_rounds_for
from repro.experiments.reporting import format_table
from repro.experiments.specs import TaskSpec
from repro.utils.combinatorics import n_choose_k

from conftest import run_once, save_report
from harness import BenchResult, measure_peak_memory, save_bench_json

CLIENT_COUNTS = (10, 50, 100, 250, 500)
SEED = 1
#: residual threshold for ConvergenceRule(metric="ci") — IPSS's phase-2
#: remaining-uncertainty shrinks under this once the evaluated marginals
#: stabilise, so the rule prunes most of the (k*+1)-stratum sample
CI_THRESHOLD = 0.01


def _value_federation(n_clients: int):
    spec = TaskSpec(
        kind="synthetic",
        setup="same-size-same-distribution",
        model="mlp",
        n_clients=n_clients,
        scale="tiny",
        seed=SEED,
    )
    gamma = sampling_rounds_for(n_clients)
    algorithm = IPSS(total_rounds=gamma, seed=SEED)
    rule = ConvergenceRule(metric="ci", threshold=CI_THRESHOLD, patience=1)
    with spec.build(None) as utility:
        start = time.perf_counter()
        result = algorithm.run(utility, n_clients, stopping_rule=rule)
        elapsed = time.perf_counter() - start
    plan = algorithm.sampling_plan(n_clients)
    return {
        "n_clients": n_clients,
        "gamma": gamma,
        "k_star": plan["k_star"],
        "phase2_stratum": n_choose_k(n_clients, plan["k_star"] + 1),
        "time_s": elapsed,
        "evaluations": result.utility_evaluations,
        "stopped_by": result.metadata.get("stopped_by"),
        "values_finite": bool(result.values.shape == (n_clients,)),
    }


def _sweep(capture_rss: bool):
    rows = []
    for n_clients in CLIENT_COUNTS:
        row, peak = measure_peak_memory(_value_federation, n_clients)
        row["peak_traced_bytes"] = peak.traced_bytes
        row["peak_rss_bytes"] = peak.rss_bytes if capture_rss else None
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="large_federation")
def test_large_federation_scaling(benchmark, results_dir, peak_rss):
    rows = run_once(benchmark, _sweep, peak_rss)

    save_report(
        results_dir,
        "large_federation",
        format_table(
            [
                {
                    "n": row["n_clients"],
                    "gamma": row["gamma"],
                    "evaluations": row["evaluations"],
                    "time_s": round(row["time_s"], 3),
                    "peak_traced_mb": round(row["peak_traced_bytes"] / 2**20, 2),
                    "stopped_by": row["stopped_by"],
                }
                for row in rows
            ],
            columns=["n", "gamma", "evaluations", "time_s", "peak_traced_mb", "stopped_by"],
            title=(
                "Large-federation mode — IPSS, γ(n)=⌈n·ln n⌉, "
                f"ci:{CI_THRESHOLD} stopping, same-size synthetic (tiny), MLP"
            ),
        ),
    )
    save_bench_json(
        results_dir,
        "large_federation",
        [
            BenchResult(
                name=f"n={row['n_clients']}",
                config={
                    "n_clients": row["n_clients"],
                    "gamma": row["gamma"],
                    "k_star": row["k_star"],
                    "task": "synthetic/same-size-same-distribution",
                    "model": "mlp",
                    "scale": "tiny",
                    "seed": SEED,
                    "stop_rule": f"ci:{CI_THRESHOLD}",
                },
                wall_time_s=row["time_s"],
                metrics={
                    "evaluations": row["evaluations"],
                    "phase2_stratum_size": row["phase2_stratum"],
                    "peak_traced_bytes": row["peak_traced_bytes"],
                    "peak_rss_bytes": row["peak_rss_bytes"],
                    "stopped_by": row["stopped_by"],
                },
            )
            for row in rows
        ],
    )

    by_n = {row["n_clients"]: row for row in rows}
    benchmark.extra_info["time_s_at_500"] = by_n[500]["time_s"]
    benchmark.extra_info["peak_traced_mb_at_500"] = by_n[500]["peak_traced_bytes"] / 2**20

    # Acceptance: every size completes end-to-end within its budget...
    for row in rows:
        assert row["values_finite"]
        assert row["evaluations"] <= row["gamma"]
    # ...and peak memory grows sub-linearly in the phase-2 stratum size
    # C(n, k*+1): the stratum grows by orders of magnitude more than the
    # resident footprint does.
    memory_growth = by_n[500]["peak_traced_bytes"] / by_n[10]["peak_traced_bytes"]
    stratum_growth = by_n[500]["phase2_stratum"] / by_n[10]["phase2_stratum"]
    assert memory_growth < math.sqrt(stratum_growth)
