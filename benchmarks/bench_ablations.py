"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

* IPSS with vs without the balanced (k*+1) phase-2 sample (constraint (3) of
  Alg. 3): the phase-2 sample should not hurt accuracy and should spend the
  leftover budget.
* Utility-cache on vs off: the cache removes repeated FL trainings when one
  oracle serves several algorithms, which is the dominant cost in practice.
* Algorithm overhead on a precomputed utility table: the bookkeeping of IPSS
  is negligible compared with FL training (the O(τγ) claim of the paper).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IPSS, MCShapley, relative_error_l2
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table
from repro.experiments.tasks import build_femnist_task
from repro.fl import TabularUtility

from conftest import monotone_game, run_once, save_report


@pytest.mark.benchmark(group="ablation-ipss")
def test_ablation_partial_stratum(benchmark, results_dir):
    """IPSS phase 2 (balanced k*+1 samples) vs truncating at k*."""

    def run():
        rows = []
        for seed in range(5):
            game = monotone_game(8, seed=seed, concavity=0.2)
            exact = MCShapley().run(game, 8).values
            full = IPSS(total_rounds=20, include_partial_stratum=True, seed=seed).run(game, 8)
            truncated = IPSS(total_rounds=20, include_partial_stratum=False, seed=seed).run(game, 8)
            rows.append(
                {
                    "seed": seed,
                    "error_with_phase2": relative_error_l2(full.values, exact),
                    "error_without_phase2": relative_error_l2(truncated.values, exact),
                    "evaluations_with": full.utility_evaluations,
                    "evaluations_without": truncated.utility_evaluations,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    save_report(
        results_dir, "ablation_ipss_phase2", format_table(rows, title="IPSS phase-2 ablation")
    )
    mean_with = float(np.mean([r["error_with_phase2"] for r in rows]))
    mean_without = float(np.mean([r["error_without_phase2"] for r in rows]))
    benchmark.extra_info["mean_error_with"] = mean_with
    benchmark.extra_info["mean_error_without"] = mean_without
    assert mean_with <= mean_without + 0.02
    assert all(r["evaluations_with"] >= r["evaluations_without"] for r in rows)


@pytest.mark.benchmark(group="ablation-cache")
def test_ablation_utility_cache(benchmark, results_dir):
    """Warm-cache reruns of the exact valuation perform zero extra FL trainings."""
    scale = ExperimentScale.tiny()
    utility, _ = build_femnist_task(n_clients=5, model="logistic", scale=scale, seed=0)

    def run():
        utility.reset_cache()
        MCShapley().run(utility, 5)
        cold_evaluations = utility.evaluations
        second = MCShapley().run(utility, 5)
        return {
            "cold_evaluations": cold_evaluations,
            "warm_extra_evaluations": second.utility_evaluations,
            "cache_hits": utility.cache_hits,
        }

    report = run_once(benchmark, run)
    save_report(
        results_dir,
        "ablation_cache",
        format_table([report], title="Utility-cache ablation (exact valuation twice)"),
    )
    assert report["cold_evaluations"] == 2**5
    assert report["warm_extra_evaluations"] == 0
    assert report["cache_hits"] >= 2**5


@pytest.mark.benchmark(group="overhead")
def test_ipss_bookkeeping_overhead(benchmark):
    """IPSS's own arithmetic on a precomputed utility table (no FL training).

    This isolates the non-τ part of the O(τγ) complexity claim; it should be
    microseconds-to-milliseconds even for 12 clients.
    """
    game = monotone_game(12, seed=0)
    algorithm = IPSS(total_rounds=100, seed=0)

    result = benchmark(lambda: algorithm.run(game, 12))
    assert result.values.shape == (12,)
