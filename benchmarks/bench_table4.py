"""Benchmark E4: regenerate Table IV (FEMNIST-style, MLP & CNN, n ∈ {3, 6, 10}).

Paper claims checked:
* IPSS achieves the lowest relative error among the approximation algorithms
  in the n = 10 MLP setting (Table IV reports 0.02 vs ≥ 0.71 for others).
* IPSS uses no more FL trainings than the γ budget while MC-Shapley needs 2^n.
"""

from __future__ import annotations

import pytest

from repro.experiments import tables
from repro.experiments.tables import render_table

from conftest import run_once, save_report


def _best_error(rows, n, model):
    subset = [r for r in rows if r["n"] == n and r["model"] == model and r["error_l2"] is not None]
    return min(subset, key=lambda r: r["error_l2"])


@pytest.mark.benchmark(group="table4")
def test_table4_mlp(benchmark, bench_scale, results_dir):
    # n_workers=2 exercises the batched parallel engine on real FL training;
    # values are identical to serial (collision-resistant per-coalition seeds).
    rows = run_once(
        benchmark,
        tables.table4,
        scale=bench_scale,
        client_counts=(3, 6, 10),
        models=("mlp",),
        seed=0,
        n_workers=2,
    )
    save_report(results_dir, "table4_mlp", render_table(rows, "Table IV — femnist-like / MLP"))

    for n in (3, 6, 10):
        ipss = next(r for r in rows if r["n"] == n and r["algorithm"] == "IPSS")
        exact = next(r for r in rows if r["n"] == n and r["algorithm"] == "MC-Shapley")
        assert ipss["evaluations"] <= {3: 5, 6: 8, 10: 32}[n]
        assert exact["evaluations"] == 2**n
    best_n10 = _best_error(rows, 10, "mlp")
    benchmark.extra_info["best_error_algorithm_n10"] = best_n10["algorithm"]
    benchmark.extra_info["ipss_error_n10"] = next(
        r["error_l2"] for r in rows if r["n"] == 10 and r["algorithm"] == "IPSS"
    )
    # IPSS should be at or near the top in accuracy under the shared budget.
    ipss_error = next(r["error_l2"] for r in rows if r["n"] == 10 and r["algorithm"] == "IPSS")
    assert ipss_error <= 3.0 * max(best_n10["error_l2"], 1e-6)


@pytest.mark.benchmark(group="table4")
def test_table4_cnn(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark,
        tables.table4,
        scale=bench_scale,
        client_counts=(3, 6),
        models=("cnn",),
        seed=0,
    )
    save_report(results_dir, "table4_cnn", render_table(rows, "Table IV — femnist-like / CNN"))
    assert any(r["algorithm"] == "IPSS" for r in rows)
    for n in (3, 6):
        ipss = next(r for r in rows if r["n"] == n and r["algorithm"] == "IPSS")
        assert ipss["error_l2"] is not None
