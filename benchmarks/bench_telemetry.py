"""Benchmark: telemetry overhead on a full pipeline run.

The telemetry subsystem promises to be effectively free: spans and metrics
wrap the oracle/store/executor hot paths, so the honest measurement is a
whole ``run_plan`` campaign — FL trainings, store writes, snapshot loop and
journal appends included — timed with telemetry off and on.  The committed
``results/telemetry_overhead.json`` pins the measured overhead; the design
target is < 3% (docs/observability.md), the assertion here allows CI-class
noise on top of it.

Values are also compared across the two modes — the overhead run doubles as
another fingerprint-neutrality check.
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentPlan, TaskSpec, run_plan
from repro.experiments.reporting import format_table
from repro.telemetry import Telemetry

from conftest import run_once, save_report
from harness import BenchResult, save_bench_json

#: wall-clock repeats per mode; medians damp scheduler noise
REPEATS = 5
#: hard gate for the committed result — the 3% design target plus noise head-room
MAX_OVERHEAD_FRACTION = 0.15

PLAN = ExperimentPlan(
    tasks=(
        TaskSpec(
            kind="synthetic",
            setup="different-size-same-distribution",
            model="mlp",
            n_clients=8,
            scale="tiny",
            seed=1,
        ),
    ),
    algorithms=("MC-Shapley", "IPSS"),
    name="telemetry-overhead",
)


def _run(base: Path, label: str, with_telemetry: bool):
    run_dir = str(base / label)
    telemetry = Telemetry.for_run_dir(run_dir) if with_telemetry else None
    start = time.perf_counter()
    try:
        report = run_plan(PLAN, run_dir, telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
    elapsed = time.perf_counter() - start
    return elapsed, report, run_dir


def _run_values(run_dir: str):
    manifest = json.loads((Path(run_dir) / "manifest.json").read_text())
    return {
        cell_id: json.loads((Path(run_dir) / cell["result_file"]).read_text())[
            "result"
        ]["values"]
        for cell_id, cell in manifest["cells"].items()
        if cell.get("status") == "done"
    }


def _measure():
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        times = {"off": [], "on": []}
        evaluations = 0
        # alternate modes so drift (thermal, page cache) hits both equally
        for repeat in range(REPEATS):
            for mode in ("off", "on"):
                elapsed, report, run_dir = _run(
                    base, f"{mode}-{repeat}", with_telemetry=(mode == "on")
                )
                times[mode].append(elapsed)
                evaluations = report.fl_trainings
        reference = _run_values(str(base / "off-0"))
        for repeat in range(REPEATS):
            for mode in ("off", "on"):
                assert _run_values(str(base / f"{mode}-{repeat}")) == reference, (
                    "telemetry (or reruns) changed computed values"
                )
    off = statistics.median(times["off"])
    on = statistics.median(times["on"])
    overhead = on / off - 1.0
    return {
        "off_median_s": off,
        "on_median_s": on,
        "overhead_fraction": overhead,
        "evaluations_per_run": evaluations,
        "repeats": REPEATS,
    }


@pytest.mark.benchmark(group="telemetry")
def test_telemetry_overhead_is_small(benchmark, results_dir):
    measured = run_once(benchmark, _measure)
    assert measured["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
        f"telemetry overhead {measured['overhead_fraction']:.1%} exceeds "
        f"{MAX_OVERHEAD_FRACTION:.0%} (target < 3%)"
    )
    rows = [
        {
            "mode": "off",
            "median_s": measured["off_median_s"],
            "evaluations": measured["evaluations_per_run"],
        },
        {
            "mode": "on",
            "median_s": measured["on_median_s"],
            "evaluations": measured["evaluations_per_run"],
        },
    ]
    save_report(
        results_dir,
        "telemetry_overhead",
        format_table(
            rows,
            columns=["mode", "median_s", "evaluations"],
            title=(
                f"Telemetry overhead — median of {REPEATS} full runs, "
                f"overhead {measured['overhead_fraction']:+.2%} (target < 3%)"
            ),
        ),
    )
    save_bench_json(
        results_dir,
        "telemetry_overhead",
        [
            BenchResult(
                name="telemetry-off",
                config={"telemetry": False, "plan": PLAN.name, "repeats": REPEATS},
                wall_time_s=measured["off_median_s"],
                metrics={"evaluations": measured["evaluations_per_run"]},
            ),
            BenchResult(
                name="telemetry-on",
                config={"telemetry": True, "plan": PLAN.name, "repeats": REPEATS},
                wall_time_s=measured["on_median_s"],
                speedup=measured["off_median_s"] / measured["on_median_s"],
                baseline="telemetry-off",
                metrics={
                    "evaluations": measured["evaluations_per_run"],
                    "overhead_fraction": measured["overhead_fraction"],
                },
            ),
        ],
    )
