"""Benchmark: fleet-executor scaling over a shared lease queue.

The fleet backend divides the paper's per-coalition training cost τ across
W ``repro worker`` *processes* coordinated only through a SQLite lease queue
and the shared utility store.  As in ``bench_parallel.py``, τ is modeled
(a GIL-releasing sleep) so the measurement isolates queue scheduling —
claim/renew/deposit/complete overhead — from core count: the benchmark boxes
are often single-core, where real FL training cannot scale but a
sleep-modeled τ can.

The workload is the paper's standard IPSS grid (n = 10 clients, γ = 32 from
Table III, pooled over several sampling seeds) evaluated as one campaign:

* worker counts 1/2/4/8, each against a fresh queue and store;
* wall-clock excludes worker spawn/import (workers are primed first);
* utilities must be bitwise-identical to serial evaluation;
* the queue's training ledger must show **zero duplicated trainings**
  (``COUNT(*) == COUNT(DISTINCT key)``) for every worker count.

Acceptance: ≥3× speedup at 4 workers over the single-worker fleet run.
Results land as a text table and BENCH-format JSON under
``benchmarks/results/fleet_scaling.{txt,json}``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import IPSS
from repro.experiments.config import sampling_rounds_for
from repro.experiments.reporting import format_table
from repro.fleet import FleetExecutor, LeaseQueue, ModeledCostEvaluator
from repro.parallel import BatchUtilityOracle
from repro.parallel.executors import SerialExecutor
from repro.store import open_store

from conftest import run_once, save_report
from harness import BenchResult, load_bench_json, save_bench_json

GRID_CLIENTS = 10
GRID_SEEDS = (0, 1, 2)
SEED = 5
#: modeled per-coalition training cost τ (seconds); sleeping releases the GIL
TAU = 0.08
#: one coalition per lease keeps the queue's granularity visible at 8 workers
BATCH_SIZE = 1
WORKER_COUNTS = (1, 2, 4, 8)
NAMESPACE = "fleet-bench"


class _PlanRecorder:
    """Proxy oracle that records the coalition batches an algorithm plans."""

    def __init__(self, inner):
        self.inner = inner
        self.batches = []
        self.n_clients = inner.n_clients

    def evaluate_batch(self, coalitions):
        batch = [frozenset(c) for c in coalitions]
        self.batches.append(batch)
        return self.inner.evaluate_batch(batch)

    def __call__(self, coalition):
        return self.inner(coalition)


def _ipss_grid():
    """The coalition set IPSS requests at the paper's n=10, γ=32 budget,
    pooled over the campaign's sampling seeds in first-appearance order."""
    gamma = sampling_rounds_for(GRID_CLIENTS)
    oracle = BatchUtilityOracle(
        ModeledCostEvaluator(n_clients=GRID_CLIENTS, tau=0.0, seed=SEED),
        n_clients=GRID_CLIENTS,
    )
    recorder = _PlanRecorder(oracle)
    for seed in GRID_SEEDS:
        IPSS(total_rounds=gamma, seed=seed).run(recorder, GRID_CLIENTS)
        oracle.reset_cache()
    grid, seen = [], set()
    for batch in recorder.batches:
        for coalition in batch:
            if coalition not in seen:
                seen.add(coalition)
                grid.append(coalition)
    return grid


def _wait_for_workers(queue_dir: str, n_workers: int, timeout: float = 120.0):
    """Block until every spawned worker has registered its heartbeat row."""
    deadline = time.monotonic() + timeout
    with LeaseQueue(queue_dir) as queue:
        while time.monotonic() < deadline:
            if len(queue.workers()) >= n_workers:
                return
            time.sleep(0.05)
    raise TimeoutError(f"only some of {n_workers} workers registered in time")


def _fleet_run(grid, n_workers: int, tmp_path):
    """Evaluate the grid on a fresh fleet of ``n_workers`` subprocesses.

    The first (untimed) batch registers the run and spawns the workers;
    the timed window starts only once every worker has checked in, so the
    measurement excludes Python startup and import time.
    """
    queue_dir = str(tmp_path / f"queue-w{n_workers}")
    store_path = str(tmp_path / f"store-w{n_workers}.sqlite")
    evaluator = ModeledCostEvaluator(n_clients=GRID_CLIENTS, tau=TAU, seed=SEED)
    executor = FleetExecutor(
        queue_dir=queue_dir,
        spawn_workers=n_workers,
        batch_size=BATCH_SIZE,
        lease_seconds=30.0,
        poll_interval=0.02,
        stall_timeout=300.0,
    )
    prime = grid[:1]
    with open_store(store_path) as store:
        oracle = BatchUtilityOracle(
            evaluator, executor=executor, store=store, store_namespace=NAMESPACE
        )
        oracle.evaluate_batch(prime)  # registers the run, spawns the fleet
        _wait_for_workers(queue_dir, n_workers)
        start = time.perf_counter()
        results = oracle.evaluate_batch(grid)
        elapsed = time.perf_counter() - start
        evaluations = oracle.evaluations
        oracle.close()
    with LeaseQueue(queue_dir) as queue:
        total, distinct = queue.training_counts()
    return elapsed, results, evaluations, (total, distinct)


def _run_fleet_scaling(tmp_path):
    grid = _ipss_grid()
    gamma = sampling_rounds_for(GRID_CLIENTS)
    grid_label = f"IPSS n={GRID_CLIENTS} gamma={gamma} x{len(GRID_SEEDS)} seeds"

    evaluator = ModeledCostEvaluator(n_clients=GRID_CLIENTS, tau=TAU, seed=SEED)
    start = time.perf_counter()
    serial_values = SerialExecutor().map_utilities(evaluator, grid)
    serial_time = time.perf_counter() - start

    rows = [
        {
            "backend": "serial",
            "n_workers": 1,
            "grid": grid_label,
            "coalitions": len(grid),
            "time_s": serial_time,
            "duplicated_trainings": 0,
            "speedup": None,
        }
    ]
    baseline_time = None
    for n_workers in WORKER_COUNTS:
        elapsed, results, evaluations, (total, distinct) = _fleet_run(
            grid, n_workers, tmp_path
        )
        assert [results[c] for c in grid] == serial_values, (
            f"fleet values diverged from serial at {n_workers} workers"
        )
        assert evaluations == len(grid)
        assert total == distinct, (
            f"{total - distinct} duplicated trainings at {n_workers} workers"
        )
        if n_workers == 1:
            baseline_time = elapsed
        rows.append(
            {
                "backend": "fleet",
                "n_workers": n_workers,
                "grid": grid_label,
                "coalitions": len(grid),
                "time_s": elapsed,
                "duplicated_trainings": total - distinct,
                "speedup": baseline_time / elapsed,
            }
        )
    return rows


@pytest.mark.benchmark(group="fleet")
def test_fleet_scaling(benchmark, results_dir, tmp_path):
    rows = run_once(benchmark, _run_fleet_scaling, tmp_path)
    save_report(
        results_dir,
        "fleet_scaling",
        format_table(
            rows,
            columns=[
                "backend",
                "n_workers",
                "coalitions",
                "time_s",
                "duplicated_trainings",
                "speedup",
            ],
            title=(
                f"Fleet scaling — {rows[0]['grid']}, modeled τ = {TAU}s, "
                f"batch size {BATCH_SIZE} (speedup vs 1 fleet worker)"
            ),
        ),
    )
    bench_path = save_bench_json(
        results_dir,
        "fleet_scaling",
        [
            BenchResult(
                name=f"{row['backend']}-workers-{row['n_workers']}",
                config={
                    "backend": row["backend"],
                    "n_workers": row["n_workers"],
                    "n_clients": GRID_CLIENTS,
                    "gamma": sampling_rounds_for(GRID_CLIENTS),
                    "grid_seeds": list(GRID_SEEDS),
                    "coalitions": row["coalitions"],
                    "tau": TAU,
                    "batch_size": BATCH_SIZE,
                },
                wall_time_s=row["time_s"],
                speedup=row["speedup"],
                baseline="fleet-workers-1" if row["backend"] == "fleet" else None,
                metrics={"duplicated_trainings": row["duplicated_trainings"]},
            )
            for row in rows
        ],
    )
    reloaded = load_bench_json(bench_path)
    assert [result.name for result in reloaded] == [
        f"{row['backend']}-workers-{row['n_workers']}" for row in rows
    ]
    by_workers = {
        row["n_workers"]: row["speedup"] for row in rows if row["backend"] == "fleet"
    }
    benchmark.extra_info["fleet_speedups"] = by_workers
    # Acceptance: ≥3× at 4 workers over the single-worker fleet, zero
    # duplicated trainings everywhere (asserted per-row inside the run).
    assert by_workers[4] >= 3.0
