"""Benchmarks E6 and E7: Fig. 7 (error vs γ) and Fig. 8 (Pareto curves).

Paper claims checked:
* Fig. 7: IPSS reaches a low error at smaller γ than CC-Shapley and its error
  does not grow as γ increases.
* Fig. 8: for every budget γ, IPSS is not dominated (faster AND more accurate)
  by another sampling algorithm — it traces the Pareto frontier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_series, format_table

from conftest import run_once, save_report


@pytest.mark.benchmark(group="figure7")
def test_figure7_error_vs_sampling_rounds(benchmark, bench_scale, results_dir):
    report = run_once(
        benchmark,
        figures.figure7,
        scale=bench_scale,
        n_clients=6,
        model="mlp",
        gammas=(8, 16, 32, 64),
        repetitions=3,
        seed=0,
    )
    save_report(
        results_dir,
        "figure7",
        format_series(
            report["gamma"],
            report["series"],
            x_label="gamma",
            title="Fig. 7 — mean error vs sampling rounds, femnist-like / MLP, 6 clients",
        ),
    )
    ipss = report["series"]["IPSS"]
    cc = report["series"]["CC-Shapley"]
    # IPSS error is non-increasing in γ (up to small numerical noise).
    assert ipss[-1] <= ipss[0] + 0.05
    # At the largest budget IPSS is at least as accurate as CC-Shapley.
    assert ipss[-1] <= cc[-1] + 0.05
    benchmark.extra_info["ipss_errors"] = [float(e) for e in ipss]
    benchmark.extra_info["cc_errors"] = [float(e) for e in cc]


@pytest.mark.benchmark(group="figure8")
def test_figure8_pareto_curves(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark,
        figures.figure8,
        scale=bench_scale,
        n_clients=6,
        model="mlp",
        gammas=(8, 16, 32),
        seed=0,
    )
    save_report(
        results_dir,
        "figure8",
        format_table(rows, title="Fig. 8 — Pareto points, femnist-like / MLP, 6 clients"),
    )
    for gamma in (8, 16, 32):
        gamma_rows = [r for r in rows if r["gamma"] == gamma]
        ipss = next(r for r in gamma_rows if r["algorithm"] == "IPSS")
        dominated_by = [
            r
            for r in gamma_rows
            if r["algorithm"] != "IPSS"
            and r["time_s"] < ipss["time_s"]
            and r["error_l2"] < ipss["error_l2"]
        ]
        assert len(dominated_by) <= 1, f"IPSS dominated at gamma={gamma}"
    mean_error = float(np.mean([r["error_l2"] for r in rows if r["algorithm"] == "IPSS"]))
    benchmark.extra_info["ipss_mean_error"] = mean_error
