"""Benchmark: convergence-based early stop on the paper's n=10 / γ=32 grid.

The anytime redesign's headline claim: a :class:`ConvergenceRule`-stopped
IPSS run spends measurably fewer oracle evaluations (FL trainings) than the
full sampling budget while reproducing the full-budget ranking.  This
benchmark runs the standard IPSS n=10/γ=32 cell — the same grid as
``bench_parallel``/``parallel_vectorized`` — once to exhaustion and once
under ``rank:1`` rank-stability stopping, on a real FL task (the
different-size synthetic setup, MLP), and records both the trainings saved
and the ranking agreement in BENCH format.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import IPSS, ConvergenceRule
from repro.experiments.reporting import format_table
from repro.experiments.specs import TaskSpec

from conftest import run_once, save_report
from harness import BenchResult, save_bench_json

N_CLIENTS = 10
GAMMA = 32
SEED = 1


def _build_utility():
    spec = TaskSpec(
        kind="synthetic",
        setup="different-size-same-distribution",
        model="mlp",
        n_clients=N_CLIENTS,
        scale="tiny",
        seed=SEED,
    )
    return spec.build(None)


def _run_cell(stopping_rule=None):
    with _build_utility() as utility:
        start = time.perf_counter()
        result = IPSS(total_rounds=GAMMA, seed=SEED).run(
            utility, N_CLIENTS, stopping_rule=stopping_rule
        )
        elapsed = time.perf_counter() - start
    return result, elapsed


def _full_vs_converged():
    full, full_time = _run_cell()
    stopped, stopped_time = _run_cell(
        stopping_rule=ConvergenceRule(metric="rank", patience=1)
    )
    return [
        {
            "run": "full-budget",
            "time_s": full_time,
            "evaluations": full.utility_evaluations,
            "ranking": full.ranking().tolist(),
            "stopped_by": None,
        },
        {
            "run": "rank-converged",
            "time_s": stopped_time,
            "evaluations": stopped.utility_evaluations,
            "ranking": stopped.ranking().tolist(),
            "stopped_by": stopped.metadata.get("stopped_by"),
        },
    ]


@pytest.mark.benchmark(group="anytime")
def test_converged_ipss_saves_evaluations(benchmark, results_dir):
    rows = run_once(benchmark, _full_vs_converged)
    full, stopped = rows
    save_report(
        results_dir,
        "anytime_ipss",
        format_table(
            [
                {k: row[k] for k in ("run", "time_s", "evaluations", "stopped_by")}
                for row in rows
            ],
            columns=["run", "time_s", "evaluations", "stopped_by"],
            title=(
                f"Anytime IPSS — n={N_CLIENTS}, γ={GAMMA}, "
                "different-size synthetic, MLP, rank:1 stopping"
            ),
        ),
    )
    save_bench_json(
        results_dir,
        "anytime_ipss",
        [
            BenchResult(
                name=row["run"],
                config={
                    "n_clients": N_CLIENTS,
                    "gamma": GAMMA,
                    "task": "synthetic/different-size-same-distribution",
                    "model": "mlp",
                    "seed": SEED,
                    "stop_rule": "rank:1" if row["run"] == "rank-converged" else None,
                },
                wall_time_s=row["time_s"],
                baseline="full-budget" if row["run"] == "rank-converged" else None,
                metrics={
                    "evaluations": row["evaluations"],
                    "evaluations_saved": full["evaluations"] - row["evaluations"],
                    "ranking_matches_full": row["ranking"] == full["ranking"],
                    "stopped_by": row["stopped_by"],
                },
            )
            for row in rows
        ],
    )
    benchmark.extra_info["full_evaluations"] = full["evaluations"]
    benchmark.extra_info["converged_evaluations"] = stopped["evaluations"]
    # Acceptance: strictly fewer trainings, same ranking.
    assert stopped["evaluations"] < full["evaluations"]
    assert stopped["ranking"] == full["ranking"]
