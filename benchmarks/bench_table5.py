"""Benchmark E5: regenerate Table V (Adult-style, MLP & XGBoost, n ∈ {3, 6, 10}).

Paper claims checked:
* gradient-based baselines are not applicable to the XGBoost model (their rows
  are absent, like the "\\" cells in the paper);
* IPSS stays within the shared γ budget and reports a finite error everywhere.
"""

from __future__ import annotations

import pytest

from repro.experiments import tables
from repro.experiments.tables import render_table

from conftest import run_once, save_report


@pytest.mark.benchmark(group="table5")
def test_table5_mlp(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark,
        tables.table5,
        scale=bench_scale,
        client_counts=(3, 6),
        models=("mlp",),
        seed=0,
    )
    save_report(results_dir, "table5_mlp", render_table(rows, "Table V — adult-like / MLP"))
    assert any(r["algorithm"] == "OR" for r in rows)  # gradient methods applicable
    for n in (3, 6):
        ipss = next(r for r in rows if r["n"] == n and r["algorithm"] == "IPSS")
        assert ipss["error_l2"] is not None


@pytest.mark.benchmark(group="table5")
def test_table5_xgb(benchmark, bench_scale, results_dir):
    rows = run_once(
        benchmark,
        tables.table5,
        scale=bench_scale,
        client_counts=(3, 6),
        models=("xgb",),
        seed=0,
    )
    save_report(results_dir, "table5_xgb", render_table(rows, "Table V — adult-like / XGB"))
    algorithms = {r["algorithm"] for r in rows}
    # Matching the paper's "\" cells: no gradient-based rows for tree models.
    assert algorithms.isdisjoint({"OR", "lambda-MR", "GTG-Shapley", "DIG-FL"})
    assert "IPSS" in algorithms
    ipss_rows = [r for r in rows if r["algorithm"] == "IPSS"]
    benchmark.extra_info["ipss_errors"] = [r["error_l2"] for r in ipss_rows]
    assert all(r["evaluations"] <= {3: 5, 6: 8}[r["n"]] for r in ipss_rows)
