"""Benchmark E12: scaling of the batched coalition engine.

Per-coalition FL training (the paper's τ) dominates every algorithm, so the
batched engine is measured two ways:

* **Worker scaling** — a synthetic 8-client task whose oracle carries an
  explicit modeled τ per coalition (a GIL-releasing sleep, the same shape as
  real multi-process FL training): ``n_workers=4`` must yield >1.5×
  wall-clock speedup over serial execution for both StratifiedSampling and
  IPSS under identical budgets, with bitwise-identical values.
* **Vectorized backend** — real FL training on the paper's standard IPSS
  grid (n = 10 clients, γ = 32 from Table III; MLP model): the vectorized
  executor must evaluate the grid ≥3× faster than the serial executor, with
  seed-for-seed identical utilities and identical training counts.

Results land as text tables *and* machine-readable BENCH-format JSON under
``benchmarks/results/`` (see ``harness.py``) so the perf trajectory is
tracked across PRs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import IPSS, StratifiedSampling
from repro.experiments.config import ExperimentScale, sampling_rounds_for
from repro.experiments.reporting import format_table
from repro.experiments.tasks import build_synthetic_task
from repro.fl.vectorized import PARITY_ATOL
from repro.parallel import BatchUtilityOracle

from conftest import monotone_game, run_once, save_report
from harness import BenchResult, load_bench_json, save_bench_json

N_CLIENTS = 8
SEED = 5
#: modeled per-coalition training cost τ (seconds); sleeping releases the GIL
TAU = 0.02


class ModeledCostGame:
    """Synthetic 8-client utility with an explicit per-coalition cost τ."""

    def __init__(self, n_clients: int, tau: float, seed: int) -> None:
        self.n_clients = n_clients
        self.tau = tau
        self._game = monotone_game(n_clients, seed=seed)

    def __call__(self, coalition) -> float:
        time.sleep(self.tau)
        return self._game(coalition)


def _timed_run(algorithm, n_workers: int):
    oracle = BatchUtilityOracle(
        ModeledCostGame(N_CLIENTS, TAU, SEED),
        n_clients=N_CLIENTS,
        n_workers=n_workers,
        executor="serial" if n_workers == 1 else "thread",
    )
    start = time.perf_counter()
    values = algorithm.run(oracle, N_CLIENTS).values
    elapsed = time.perf_counter() - start
    return elapsed, values, oracle.evaluations


def _scaling_rows(algorithm_factory, worker_counts=(1, 2, 4)):
    rows = []
    serial_time = None
    serial_values = None
    for n_workers in worker_counts:
        elapsed, values, evaluations = _timed_run(algorithm_factory(), n_workers)
        if n_workers == 1:
            serial_time, serial_values = elapsed, values
        assert np.array_equal(values, serial_values), "parallel run changed values"
        rows.append(
            {
                "algorithm": algorithm_factory().name,
                "n_workers": n_workers,
                "time_s": elapsed,
                "evaluations": evaluations,
                "speedup": serial_time / elapsed,
            }
        )
    return rows


def _run_scaling():
    rows = []
    rows += _scaling_rows(
        lambda: StratifiedSampling(total_rounds=24, scheme="mc", seed=SEED)
    )
    rows += _scaling_rows(lambda: IPSS(total_rounds=24, seed=SEED))
    return rows


@pytest.mark.benchmark(group="parallel")
def test_parallel_speedup(benchmark, results_dir):
    rows = run_once(benchmark, _run_scaling)
    save_report(
        results_dir,
        "parallel_scaling",
        format_table(
            rows,
            columns=["algorithm", "n_workers", "time_s", "evaluations", "speedup"],
            title=f"Batched-engine scaling — {N_CLIENTS} clients, modeled τ = {TAU}s",
        ),
    )
    save_bench_json(
        results_dir,
        "parallel_scaling",
        [
            BenchResult(
                name=f"{row['algorithm']}-workers-{row['n_workers']}",
                config={
                    "algorithm": row["algorithm"],
                    "n_workers": row["n_workers"],
                    "n_clients": N_CLIENTS,
                    "tau": TAU,
                    "backend": "serial" if row["n_workers"] == 1 else "thread",
                },
                wall_time_s=row["time_s"],
                speedup=row["speedup"],
                baseline=f"{row['algorithm']}-workers-1",
                metrics={"evaluations": row["evaluations"]},
            )
            for row in rows
        ],
    )
    four_worker_speedups = [r["speedup"] for r in rows if r["n_workers"] == 4]
    benchmark.extra_info["speedup_4_workers"] = four_worker_speedups
    # Acceptance: >1.5× wall-clock speedup with 4 workers on the 8-client task.
    assert all(s > 1.5 for s in four_worker_speedups)


# --------------------------------------------------------------------------- #
# Vectorized backend on the standard IPSS grid
# --------------------------------------------------------------------------- #
GRID_CLIENTS = 10
GRID_SEEDS = (0, 1, 2)
GRID_MODEL = "mlp"
GRID_SCALE = "tiny"
REPEATS = 3


class _PlanRecorder:
    """Proxy oracle that records the coalition batches an algorithm plans."""

    def __init__(self, inner):
        self.inner = inner
        self.batches = []
        self.n_clients = inner.n_clients

    def evaluate_batch(self, coalitions):
        batch = [frozenset(c) for c in coalitions]
        self.batches.append(batch)
        return self.inner.evaluate_batch(batch)

    def __call__(self, coalition):
        return self.inner(coalition)

    @property
    def evaluations(self):
        return self.inner.evaluations


def _build_grid_task():
    return build_synthetic_task(
        "same-size-same-distribution",
        n_clients=GRID_CLIENTS,
        model=GRID_MODEL,
        scale=ExperimentScale.from_name(GRID_SCALE),
        seed=0,
    )


def _ipss_grid():
    """The coalition set IPSS requests at the paper's n=10, γ=32 budget.

    Pools the plans of several independent IPSS runs (the shape of a real
    campaign: the same grid is revisited under different sampling seeds),
    deduplicated in first-appearance order.
    """
    gamma = sampling_rounds_for(GRID_CLIENTS)
    utility = _build_grid_task()
    recorder = _PlanRecorder(utility)
    for seed in GRID_SEEDS:
        IPSS(total_rounds=gamma, seed=seed).run(recorder, GRID_CLIENTS)
        utility.reset_cache()
    grid, seen = [], set()
    for batch in recorder.batches:
        for coalition in batch:
            if coalition not in seen:
                seen.add(coalition)
                grid.append(coalition)
    return grid


def _evaluate_grid(grid, backend):
    utility = _build_grid_task()
    utility.set_n_workers(1, backend)
    start = time.perf_counter()
    results = utility.evaluate_batch(grid)
    elapsed = time.perf_counter() - start
    if backend == "vectorized":
        assert utility.executor.last_fallback_reason is None, (
            f"vectorized backend silently fell back: "
            f"{utility.executor.last_fallback_reason}"
        )
    return elapsed, results, utility.evaluations


def _run_vectorized_grid():
    grid = _ipss_grid()
    gamma = sampling_rounds_for(GRID_CLIENTS)
    rows = []
    serial_median = serial_results = serial_evaluations = None
    for backend in ("serial", "vectorized"):
        times, results, evaluations = [], None, None
        for _ in range(REPEATS):
            elapsed, results, evaluations = _evaluate_grid(grid, backend)
            times.append(elapsed)
        median = sorted(times)[len(times) // 2]
        if backend == "serial":
            serial_median, serial_results, serial_evaluations = (
                median,
                results,
                evaluations,
            )
        assert list(results) == list(serial_results)
        values = np.asarray([results[key] for key in results])
        serial_values = np.asarray([serial_results[key] for key in serial_results])
        # Gate on the documented cross-BLAS guarantee; the unit suite pins
        # bitwise equality for the build it runs on.
        assert np.allclose(
            values, serial_values, rtol=0, atol=PARITY_ATOL
        ), "backend changed utilities"
        assert evaluations == serial_evaluations
        rows.append(
            {
                "backend": backend,
                "grid": f"IPSS n={GRID_CLIENTS} gamma={gamma} x{len(GRID_SEEDS)} seeds",
                "coalitions": len(grid),
                "time_s": median,
                "evaluations": evaluations,
                "speedup": serial_median / median,
            }
        )
    return rows


@pytest.mark.benchmark(group="parallel")
def test_vectorized_backend_speedup(benchmark, results_dir):
    rows = run_once(benchmark, _run_vectorized_grid)
    save_report(
        results_dir,
        "parallel_vectorized",
        format_table(
            rows,
            columns=["backend", "grid", "coalitions", "time_s", "evaluations", "speedup"],
            title=(
                f"Vectorized backend — standard IPSS grid, {GRID_MODEL} model, "
                f"{GRID_SCALE} scale (median of {REPEATS})"
            ),
        ),
    )
    bench_path = save_bench_json(
        results_dir,
        "parallel_vectorized",
        [
            BenchResult(
                name=f"ipss-grid-{row['backend']}",
                config={
                    "task": "synthetic/same-size-same-distribution",
                    "model": GRID_MODEL,
                    "scale": GRID_SCALE,
                    "n_clients": GRID_CLIENTS,
                    "gamma": sampling_rounds_for(GRID_CLIENTS),
                    "grid_seeds": list(GRID_SEEDS),
                    "coalitions": row["coalitions"],
                    "backend": row["backend"],
                    "repeats": REPEATS,
                },
                wall_time_s=row["time_s"],
                speedup=row["speedup"],
                baseline="ipss-grid-serial",
                metrics={"evaluations": row["evaluations"]},
            )
            for row in rows
        ],
    )
    # Round-trip the BENCH file through the reader so writer/reader schema
    # drift is caught the moment a benchmark runs.
    reloaded = load_bench_json(bench_path)
    assert [result.name for result in reloaded] == [
        f"ipss-grid-{row['backend']}" for row in rows
    ]
    vectorized = next(row for row in rows if row["backend"] == "vectorized")
    benchmark.extra_info["vectorized_speedup"] = vectorized["speedup"]
    # Acceptance: ≥3× over the serial executor on the standard IPSS grid.
    assert vectorized["speedup"] >= 3.0
