"""Benchmark E12: multi-worker scaling of the batched coalition engine.

Per-coalition FL training (the paper's τ) dominates every algorithm, so the
batched engine's speedup is measured against a synthetic 8-client task whose
oracle carries an explicit modeled τ per coalition (a GIL-releasing sleep, the
same shape as real multi-process FL training).  Claims checked:

* ``n_workers=4`` yields >1.5× wall-clock speedup over serial execution for
  both StratifiedSampling and IPSS under identical budgets;
* the parallel values are bitwise-identical to the serial ones (the engine is
  value-preserving by construction).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import IPSS, StratifiedSampling
from repro.experiments.reporting import format_table
from repro.parallel import BatchUtilityOracle

from conftest import monotone_game, run_once, save_report

N_CLIENTS = 8
SEED = 5
#: modeled per-coalition training cost τ (seconds); sleeping releases the GIL
TAU = 0.02


class ModeledCostGame:
    """Synthetic 8-client utility with an explicit per-coalition cost τ."""

    def __init__(self, n_clients: int, tau: float, seed: int) -> None:
        self.n_clients = n_clients
        self.tau = tau
        self._game = monotone_game(n_clients, seed=seed)

    def __call__(self, coalition) -> float:
        time.sleep(self.tau)
        return self._game(coalition)


def _timed_run(algorithm, n_workers: int):
    oracle = BatchUtilityOracle(
        ModeledCostGame(N_CLIENTS, TAU, SEED),
        n_clients=N_CLIENTS,
        n_workers=n_workers,
        executor="serial" if n_workers == 1 else "thread",
    )
    start = time.perf_counter()
    values = algorithm.run(oracle, N_CLIENTS).values
    elapsed = time.perf_counter() - start
    return elapsed, values, oracle.evaluations


def _scaling_rows(algorithm_factory, worker_counts=(1, 2, 4)):
    rows = []
    serial_time = None
    serial_values = None
    for n_workers in worker_counts:
        elapsed, values, evaluations = _timed_run(algorithm_factory(), n_workers)
        if n_workers == 1:
            serial_time, serial_values = elapsed, values
        assert np.array_equal(values, serial_values), "parallel run changed values"
        rows.append(
            {
                "algorithm": algorithm_factory().name,
                "n_workers": n_workers,
                "time_s": elapsed,
                "evaluations": evaluations,
                "speedup": serial_time / elapsed,
            }
        )
    return rows


def _run_scaling():
    rows = []
    rows += _scaling_rows(
        lambda: StratifiedSampling(total_rounds=24, scheme="mc", seed=SEED)
    )
    rows += _scaling_rows(lambda: IPSS(total_rounds=24, seed=SEED))
    return rows


@pytest.mark.benchmark(group="parallel")
def test_parallel_speedup(benchmark, results_dir):
    rows = run_once(benchmark, _run_scaling)
    save_report(
        results_dir,
        "parallel_scaling",
        format_table(
            rows,
            columns=["algorithm", "n_workers", "time_s", "evaluations", "speedup"],
            title=f"Batched-engine scaling — {N_CLIENTS} clients, modeled τ = {TAU}s",
        ),
    )
    four_worker_speedups = [r["speedup"] for r in rows if r["n_workers"] == 4]
    benchmark.extra_info["speedup_4_workers"] = four_worker_speedups
    # Acceptance: >1.5× wall-clock speedup with 4 workers on the 8-client task.
    assert all(s > 1.5 for s in four_worker_speedups)
