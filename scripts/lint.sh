#!/usr/bin/env bash
# Static gate: the repository's own contract checker plus (when installed)
# pinned ruff and mypy.  `repro check` always runs — it has no dependencies
# beyond the repo itself; ruff/mypy are skipped with a notice when absent so
# the gate is still useful on machines without the lint extra.
#
# Install the external tools with:  pip install -e .[lint]
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

echo "== repro check (contract rules, empty baseline) =="
PYTHONPATH=src python -m repro.cli check src tests || status=1

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (lint + import sort) =="
    ruff check src tests || status=1
else
    echo "== ruff not installed; skipping (pip install -e .[lint]) =="
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (strict on analysis + store.fingerprint, ratchet elsewhere) =="
    mypy || status=1
else
    echo "== mypy not installed; skipping (pip install -e .[lint]) =="
fi

exit "$status"
