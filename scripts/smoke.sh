#!/usr/bin/env bash
# Local mirror of the CI smoke gate: full test suite + benchmark collection.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest benchmarks/ --collect-only -q -o python_files='bench_*.py'
