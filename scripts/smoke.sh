#!/usr/bin/env bash
# Local mirror of the CI gates: static contract check (see scripts/lint.sh)
# + full test suite + benchmark collection
# + the persistent-store CLI smoke (see scripts/store_smoke.sh) + the
# scenario-robustness CLI smoke (see scripts/scenario_smoke.sh) + the
# vectorized-backend parity smoke (see scripts/vectorized_smoke.sh) + the
# anytime-valuation smoke (see scripts/anytime_smoke.sh) + the
# large-federation smoke (see scripts/large_n_smoke.sh) + the
# telemetry-neutrality smoke (see scripts/telemetry_smoke.sh) + the
# fleet crash-recovery smoke (see scripts/fleet_smoke.sh) + the
# valuation-service crash smoke (see scripts/service_smoke.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

bash scripts/lint.sh
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest benchmarks/ --collect-only -q -o python_files='bench_*.py'
bash scripts/store_smoke.sh
bash scripts/scenario_smoke.sh
bash scripts/vectorized_smoke.sh
bash scripts/anytime_smoke.sh
bash scripts/large_n_smoke.sh
bash scripts/telemetry_smoke.sh
bash scripts/fleet_smoke.sh
bash scripts/service_smoke.sh
