#!/usr/bin/env bash
# Valuation-service smoke gate (shared by scripts/smoke.sh and CI): start
# `repro serve`, submit two jobs where the second (higher priority) preempts
# the first mid-run, SIGKILL the server while the preempted job is running
# again, restart the server over the same state directory, and assert the
# recovered job completes with values **bitwise-identical** to a direct
# `repro run` of the same task — with zero duplicated trainings in the
# service ledger (COUNT(*) == COUNT(DISTINCT key)).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
CLI="python -m repro.cli"
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

SLOW_FLAGS="--task synthetic --setup same-size-same-distribution --n-clients 12 --seed 0"
FAST_FLAGS="--task synthetic --setup same-size-same-distribution --n-clients 5 --seed 1"
STATE_DIR="$SMOKE_DIR/state"

start_server() {
    $CLI serve "$STATE_DIR" --port 0 --workers 1 > "$SMOKE_DIR/banner.json" 2>"$SMOKE_DIR/server.log" &
    SERVER_PID=$!
    # The first stdout line is a JSON banner carrying the ephemeral port.
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/banner.json" ] && break
        sleep 0.1
    done
    URL="http://127.0.0.1:$(head -n1 "$SMOKE_DIR/banner.json" | python -c 'import json,sys; print(json.load(sys.stdin)["port"])')"
}

# 1. Direct references: what `repro run` computes for each task.
$CLI run --run-dir "$SMOKE_DIR/ref-slow" $SLOW_FLAGS --algorithms MC-Shapley \
    --json-stream | tail -n2 | head -n1 > "$SMOKE_DIR/ref-slow.json"
$CLI run --run-dir "$SMOKE_DIR/ref-fast" $FAST_FLAGS --algorithms MC-Shapley \
    --json-stream | tail -n2 | head -n1 > "$SMOKE_DIR/ref-fast.json"

# 2. Start the server and submit the slow job.
start_server
echo "service smoke: server pid $SERVER_PID at $URL"
SLOW_JOB=$($CLI submit --url "$URL" $SLOW_FLAGS --algorithm MC-Shapley --json \
    | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')

# 3. Once the slow job is mid-run, submit a higher-priority job: the
#    scheduler (one worker) must preempt the slow job to serve it.
python - "$URL" "$SLOW_JOB" <<'EOF'
import sys, time
from repro.service.client import ServiceClient

client = ServiceClient(sys.argv[1])
deadline = time.monotonic() + 60
while time.monotonic() < deadline:
    if client.job(sys.argv[2])["status"] == "running":
        sys.exit(0)
    time.sleep(0.05)
sys.exit("service smoke: slow job never started running")
EOF
FAST_JOB=$($CLI submit --url "$URL" $FAST_FLAGS --algorithm MC-Shapley --priority 10 --json \
    | python -c 'import json,sys; print(json.load(sys.stdin)["job_id"])')

# 4. Wait for the preemption to land and the fast job to finish, then catch
#    the slow job running its second attempt and SIGKILL the server.
python - "$URL" "$SLOW_JOB" "$FAST_JOB" <<'EOF'
import sys, time
from repro.service.client import ServiceClient

client = ServiceClient(sys.argv[1])
deadline = time.monotonic() + 120
while time.monotonic() < deadline:
    slow = client.job(sys.argv[2])
    fast = client.job(sys.argv[3])
    if (
        fast["status"] == "done"
        and slow["status"] == "running"
        and slow["preemptions"] >= 1
    ):
        sys.exit(0)
    if slow["status"] == "done":
        sys.exit("service smoke: slow job finished before the kill window")
    time.sleep(0.05)
sys.exit("service smoke: never reached the preempted-and-running-again state")
EOF
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "service smoke: SIGKILLed the server mid-job"

# 5. Restart over the same state directory: the orphaned job must be
#    recovered, resumed from its checkpoint, and completed.
start_server
head -n1 "$SMOKE_DIR/banner.json" | python -c '
import json, sys
banner = json.load(sys.stdin)
assert banner["recovered"], "restarted server recovered no jobs"
print("service smoke: restarted, recovered", banner["recovered"])
'
python - "$URL" "$SLOW_JOB" "$FAST_JOB" "$SMOKE_DIR/ref-slow.json" "$SMOKE_DIR/ref-fast.json" "$STATE_DIR" <<'EOF'
import json, sys
from repro.service.client import ServiceClient
from repro.service.jobs import JobStore

client = ServiceClient(sys.argv[1])
slow = client.wait(sys.argv[2], timeout=300)
fast = client.job(sys.argv[3])
assert slow["status"] == "done", f"recovered job ended {slow['status']!r}: {slow.get('error')}"
assert fast["status"] == "done", f"fast job ended {fast['status']!r}"
assert slow["preemptions"] >= 1, "the priority submit never preempted the slow job"
assert slow["attempts"] >= 2, "the recovered job never re-attempted"

ref_slow = json.load(open(sys.argv[4]))
ref_fast = json.load(open(sys.argv[5]))
assert ref_slow["event"] == ref_fast["event"] == "snapshot" and ref_slow["done"]
assert slow["result"]["result"]["values"] == ref_slow["values"], (
    "recovered job values differ from the direct run"
)
assert fast["result"]["result"]["values"] == ref_fast["values"], (
    "preempting job values differ from the direct run"
)

with JobStore(sys.argv[6]) as jobs:
    total, distinct = jobs.training_counts()
assert total > 0, "service trained nothing"
assert total == distinct, f"{total - distinct} duplicated trainings in the ledger"
print(
    f"service smoke ok: preempted, SIGKILLed, recovered; values match the "
    f"direct runs bitwise; {total} trainings, 0 duplicated"
)
EOF
