#!/usr/bin/env bash
# Vectorized-backend parity smoke: the vectorized executor must produce the
# same utilities and the same training counts as the serial executor on a
# real FL task, and must actually engage (no silent fallback).  Kept tiny so
# CI pays a few seconds, not a benchmark run.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - <<'PY'
import numpy as np

from repro.core import IPSS
from repro.experiments.config import ExperimentScale, sampling_rounds_for
from repro.experiments.tasks import build_synthetic_task
from repro.fl.vectorized import PARITY_ATOL


def run(backend):
    utility = build_synthetic_task(
        "same-size-same-distribution",
        n_clients=6,
        model="mlp",
        scale=ExperimentScale.tiny(),
        seed=0,
    )
    utility.set_n_workers(1, backend)
    values = IPSS(total_rounds=sampling_rounds_for(6), seed=0).run(utility, 6).values
    return values, utility.evaluations, utility


serial_values, serial_evals, _ = run("serial")
vector_values, vector_evals, utility = run("vectorized")

assert utility.executor.last_fallback_reason is None, (
    f"vectorized backend fell back: {utility.executor.last_fallback_reason}"
)
# Gate on the documented cross-BLAS guarantee (docs/performance.md); the unit
# suite additionally pins bitwise equality for the build it runs on.
assert np.allclose(serial_values, vector_values, rtol=0, atol=PARITY_ATOL), (
    f"parity violation:\n  serial     {serial_values}\n  vectorized {vector_values}"
)
assert serial_evals == vector_evals, (serial_evals, vector_evals)
max_diff = float(np.max(np.abs(serial_values - vector_values)))
print(
    f"vectorized smoke ok: {vector_evals} trainings, "
    f"max |serial - vectorized| = {max_diff:.1e} (atol {PARITY_ATOL})"
)
PY
