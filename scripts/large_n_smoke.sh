#!/usr/bin/env bash
# Large-federation smoke gate (shared by scripts/smoke.sh and CI):
#
# 1. the tracemalloc memory-regression tests: planning/sampling a stratum at
#    n=500 must allocate O(batch), never anything 2^n-shaped;
# 2. an end-to-end n=100 IPSS CLI run under a tight budget with CI-width
#    stopping (`--stop-on ci:...`) must complete, stop early, and spend
#    strictly fewer FL trainings than the budget γ allows.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI="python -m repro.cli"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -q \
    tests/core/test_plans.py::TestMemoryRegression

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/large" \
    --task synthetic --setup same-size-same-distribution --model mlp \
    --n-clients 100 --scale tiny --seed 1 --algorithms IPSS \
    --stop-on ci:0.01 --json > "$SMOKE_DIR/large.json"

python - "$SMOKE_DIR" <<'EOF'
import json, os, sys

smoke_dir = sys.argv[1]
report = json.load(open(os.path.join(smoke_dir, "large.json")))
results = os.path.join(smoke_dir, "large", "results")
(name,) = os.listdir(results)
cell = json.load(open(os.path.join(results, name)))["result"]

n = 100
gamma = 461  # ⌈100·ln 100⌉, the runner's default budget for n=100
assert len(cell["values"]) == n, f"expected {n} values, got {len(cell['values'])}"
assert report["fl_trainings"] > 0
assert cell["metadata"].get("stopped_early") is True, cell["metadata"]
assert cell["utility_evaluations"] < gamma, (
    f"CI stopping saved nothing: {cell['utility_evaluations']} of {gamma}"
)
print(
    f"large-n smoke ok: n={n} IPSS valued in {cell['utility_evaluations']} "
    f"of {gamma} evaluations ({cell['metadata']['stopped_by']}), "
    "O(batch) planning verified at n=500"
)
EOF
