#!/usr/bin/env bash
# Fleet smoke gate (shared by scripts/smoke.sh and CI): run a tiny task via
# `repro run --backend fleet` with two spawned workers, SIGKILL one of them
# mid-run, and assert the run still completes with values identical to a
# serial reference and **zero duplicated trainings** in the queue's ledger
# (COUNT(*) == COUNT(DISTINCT key) — lease expiry requeues the dead
# worker's batch, the store dedupes everything already deposited).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
RUN_PID=""
cleanup() {
    # Never delete the queue out from under a still-running coordinator.
    [ -n "$RUN_PID" ] && kill "$RUN_PID" 2>/dev/null && wait "$RUN_PID" 2>/dev/null
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT
CLI="python -m repro.cli"
TASK_FLAGS="--task adult --model logistic --n-clients 5 --scale tiny --seed 0"
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

# 1. Serial reference run.
$CLI run --run-dir "$SMOKE_DIR/run-serial" --store "$SMOKE_DIR/store-serial.sqlite" \
    $TASK_FLAGS --json > "$SMOKE_DIR/serial.json"

# 2. The same plan on the fleet backend, two workers, short leases so the
#    killed worker's batch requeues quickly.
$CLI run --run-dir "$SMOKE_DIR/run-fleet" --store "$SMOKE_DIR/store-fleet.sqlite" \
    --backend fleet --queue-dir "$SMOKE_DIR/queue" --spawn-workers 2 \
    --lease-seconds 3 $TASK_FLAGS --json > "$SMOKE_DIR/fleet.json" &
RUN_PID=$!

# 3. Wait until a worker holds a lease, then SIGKILL it mid-batch.
VICTIM=$(python - "$SMOKE_DIR/queue" <<'EOF'
import sys, time
from repro.fleet.queue import LeaseQueue

queue_dir = sys.argv[1]
deadline = time.monotonic() + 90
while time.monotonic() < deadline:
    with LeaseQueue(queue_dir) as queue:
        pids = {w["worker_id"]: w["pid"] for w in queue.workers()}
        rows = queue._connection.execute(
            "SELECT owner FROM batches WHERE status = 'leased' LIMIT 1"
        ).fetchall()
        if rows and pids.get(rows[0][0]):
            print(pids[rows[0][0]])
            sys.exit(0)
    time.sleep(0.02)
sys.exit(3)
EOF
) || { echo "fleet smoke: never caught a worker holding a lease" >&2; exit 1; }

kill -9 "$VICTIM" 2>/dev/null || true
echo "fleet smoke: SIGKILLed worker pid $VICTIM mid-lease"

# 4. The run must still finish cleanly.
wait "$RUN_PID"
RUN_PID=""

# 5. Values identical to serial; ledger shows zero duplicated trainings.
python - "$SMOKE_DIR/serial.json" "$SMOKE_DIR/fleet.json" "$SMOKE_DIR/queue" <<'EOF'
import json, sys
from repro.fleet.queue import LeaseQueue

serial = json.load(open(sys.argv[1]))
fleet = json.load(open(sys.argv[2]))
errors = lambda report: {
    row["algorithm"]: row["error_l2"]
    for row in report["rows"]
    if row.get("status") == "done"
}
assert errors(serial), "serial reference produced no finished rows"
assert errors(fleet) == errors(serial), (
    f"fleet run changed values: {errors(fleet)} != {errors(serial)}"
)
with LeaseQueue(sys.argv[3]) as queue:
    total, distinct = queue.training_counts()
assert total > 0, "fleet run trained nothing"
assert total == distinct, f"{total - distinct} duplicated trainings in the ledger"
print(
    f"fleet smoke ok: worker killed mid-run, values match serial, "
    f"{total} trainings, 0 duplicated"
)
EOF
