#!/usr/bin/env bash
# Scenario smoke gate (shared by scripts/smoke.sh and CI): run the free-rider
# robustness scenario twice via `repro run --scenario` against one persistent
# store and assert (a) exact Shapley ranks the injected free rider strictly
# last, and (b) the warm rerun performs zero FL trainings.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI="python -m repro.cli"
SCENARIO_FLAGS="--scenario free-rider --algorithms MC-Shapley,IPSS --scale tiny --seed 0"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/run1" --store "$SMOKE_DIR/store.sqlite" $SCENARIO_FLAGS --json \
    > "$SMOKE_DIR/first.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/run2" --store "$SMOKE_DIR/store.sqlite" $SCENARIO_FLAGS --json \
    > "$SMOKE_DIR/second.json"

python - "$SMOKE_DIR/first.json" "$SMOKE_DIR/second.json" <<'EOF'
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))

rows = {row["algorithm"]: row for row in first["rows"] if row["status"] == "done"}
exact = rows["MC-Shapley"]
assert exact["strictly_last"], (
    f"exact Shapley did not rank the free rider strictly last: {exact}"
)
assert exact["precision_at_k"] == 1.0, exact
assert exact["adversary_ranks"] == [1], exact

assert first["fl_trainings"] > 0, f"cold run trained nothing: {first['fl_trainings']}"
assert second["fl_trainings"] == 0, (
    f"warm scenario rerun retrained {second['fl_trainings']} coalitions; "
    "the persistent store should have served them all"
)
values = lambda report: {
    (row["scenario"], row["algorithm"]): row["values"]
    for row in report["rows"] if row["status"] == "done"
}
assert values(first) == values(second), "store changed scenario valuations"
print(
    f"scenario smoke ok: free rider strictly last, cold={first['fl_trainings']} "
    f"trainings, warm=0 (store_hits={second['store_hits']})"
)
EOF
