#!/usr/bin/env bash
# Store smoke gate (shared by scripts/smoke.sh and CI): run a tiny task twice
# via `repro run` against one persistent store and assert the second run is
# served entirely from it — zero coalition FL trainings, identical errors.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI="python -m repro.cli"
TASK_FLAGS="--task adult --model logistic --n-clients 3 --scale tiny --seed 0"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/run1" --store "$SMOKE_DIR/store.sqlite" $TASK_FLAGS --json \
    > "$SMOKE_DIR/first.json"
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/run2" --store "$SMOKE_DIR/store.sqlite" $TASK_FLAGS --json \
    > "$SMOKE_DIR/second.json"

python - "$SMOKE_DIR/first.json" "$SMOKE_DIR/second.json" <<'EOF'
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
assert first["fl_trainings"] > 0, f"cold run trained nothing: {first['fl_trainings']}"
assert second["fl_trainings"] == 0, (
    f"warm run retrained {second['fl_trainings']} coalitions; "
    "the persistent store should have served them all"
)
errors = lambda report: {
    row["algorithm"]: row["error_l2"]
    for row in report["rows"]
    if row.get("status") == "done"
}
assert errors(first) == errors(second), "store changed computed values"
print(
    f"store smoke ok: cold={first['fl_trainings']} trainings, "
    f"warm=0 (store_hits={second['store_hits']})"
)
EOF
