#!/usr/bin/env bash
# Telemetry neutrality smoke: the same IPSS grid run twice — telemetry off,
# telemetry on — must produce bitwise-identical values and identical store
# keys (telemetry may observe a run, never steer it), and the journal the
# second run leaves behind must render through `repro trace` / `repro stats`.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FLAGS=(
  --task synthetic --setup different-size-same-distribution
  --model mlp --n-clients 10 --scale tiny --seed 1
  --algorithms IPSS --stop-on budget:32
)

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli run \
  --run-dir "$WORK/off" --store "$WORK/off.sqlite" \
  "${FLAGS[@]}" --no-telemetry --json > "$WORK/off.json"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli run \
  --run-dir "$WORK/on" --store "$WORK/on.sqlite" \
  "${FLAGS[@]}" --json > "$WORK/on.json"

WORK="$WORK" PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - <<'PY'
import json
import os
import sqlite3

work = os.environ["WORK"]


def run_values(run_dir):
    with open(os.path.join(run_dir, "manifest.json")) as handle:
        manifest = json.load(handle)
    values = {}
    for cell_id, cell in manifest["cells"].items():
        if cell.get("status") != "done":
            continue
        with open(os.path.join(run_dir, cell["result_file"])) as handle:
            values[cell_id] = json.load(handle)["result"]["values"]
    assert values, f"no finished cells in {run_dir}"
    return values


def store_keys(path):
    with sqlite3.connect(path) as connection:
        return sorted(row[0] for row in connection.execute("SELECT key FROM utilities"))


off = run_values(os.path.join(work, "off"))
on = run_values(os.path.join(work, "on"))
assert off == on, "telemetry changed computed values:\n  off %r\n  on  %r" % (off, on)

keys_off = store_keys(os.path.join(work, "off.sqlite"))
keys_on = store_keys(os.path.join(work, "on.sqlite"))
assert keys_off == keys_on, "telemetry changed store keys"
assert keys_on, "store ended up empty"

assert not os.path.exists(os.path.join(work, "off", "telemetry")), (
    "--no-telemetry still wrote a journal"
)

with open(os.path.join(work, "off.json")) as handle:
    report = json.load(handle)
evaluations = report["accounting"]["evaluations"]
print(
    f"telemetry smoke: values and {len(keys_on)} store keys identical "
    f"off/on ({evaluations} evaluations)"
)
PY

TRACE="$(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli trace "$WORK/on")"
grep -q "pipeline.run" <<<"$TRACE"
grep -q "critical path:" <<<"$TRACE"

STATS="$(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli stats "$WORK/on")"
grep -q "utility.eval_seconds" <<<"$STATS"
grep -q "executor.batch_size" <<<"$STATS"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.cli stats "$WORK/on" --prometheus \
  | grep -q "repro_utility_eval_seconds_count"

echo "telemetry smoke ok: trace and stats render from the run journal"
