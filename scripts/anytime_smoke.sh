#!/usr/bin/env bash
# Anytime-valuation smoke gate (shared by scripts/smoke.sh and CI):
#
# 1. a full-budget IPSS run on the paper's n=10 / γ=32 grid, store-backed;
# 2. the same cell with `--stop-on rank:1` must stop with STRICTLY fewer
#    oracle evaluations while reproducing the full-budget ranking exactly;
# 3. a run interrupted mid-valuation must resume from its estimator
#    checkpoint (`repro resume`), perform ZERO extra FL trainings against the
#    warm store, and land on bitwise-identical values.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
CLI="python -m repro.cli"
TASK_FLAGS="--task synthetic --setup different-size-same-distribution --model mlp \
    --n-clients 10 --scale tiny --seed 1 --algorithms IPSS"

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/full" --store "$SMOKE_DIR/store.sqlite" $TASK_FLAGS --json \
    > "$SMOKE_DIR/full.json"
# Separate store: the stopped run's trainings must measure its own demand.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI run \
    --run-dir "$SMOKE_DIR/stop" --store "$SMOKE_DIR/store_stop.sqlite" $TASK_FLAGS \
    --stop-on rank:1 --json > "$SMOKE_DIR/stop.json"

python - "$SMOKE_DIR" <<'EOF'
import json, os, sys
import numpy as np

smoke_dir = sys.argv[1]
full = json.load(open(os.path.join(smoke_dir, "full.json")))
stop = json.load(open(os.path.join(smoke_dir, "stop.json")))

def cell(run):
    results = os.path.join(smoke_dir, run, "results")
    (name,) = os.listdir(results)
    return json.load(open(os.path.join(results, name)))["result"]

full_cell, stop_cell = cell("full"), cell("stop")
assert full["fl_trainings"] > 0
assert 0 < stop["fl_trainings"] < full["fl_trainings"], (
    f"converged run must train strictly less: {stop['fl_trainings']} "
    f"vs {full['fl_trainings']}"
)
assert stop_cell["metadata"]["stopped_early"] is True, stop_cell["metadata"]
full_rank = np.argsort(-np.asarray(full_cell["values"])).tolist()
stop_rank = np.argsort(-np.asarray(stop_cell["values"])).tolist()
assert stop_rank == full_rank, f"ranking diverged: {stop_rank} vs {full_rank}"
print(
    f"anytime smoke (convergence) ok: stopped at {stop_cell['utility_evaluations']} "
    f"of {full_cell['utility_evaluations']} evaluations "
    f"({stop_cell['metadata']['stopped_by']}), ranking reproduced"
)
EOF

# Interrupt a fresh run of the same cell mid-valuation (the warm store means
# the partial run itself trains nothing), then finish it with `repro resume`.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$SMOKE_DIR" <<'EOF'
import sys
from repro.experiments.pipeline import ExperimentPlan, run_plan
from repro.experiments.specs import TaskSpec
from repro.store import open_store

smoke_dir = sys.argv[1]
spec = TaskSpec(
    kind="synthetic", setup="different-size-same-distribution",
    model="mlp", n_clients=10, scale="tiny", seed=1,
)
plan = ExperimentPlan(tasks=(spec,), algorithms=("IPSS",))

def interrupt(spec, algorithm, snapshot):
    if snapshot.chunk_index == 2:
        raise KeyboardInterrupt

with open_store(f"{smoke_dir}/store.sqlite") as store:
    try:
        run_plan(plan, f"{smoke_dir}/resume", store=store, on_snapshot=interrupt)
    except KeyboardInterrupt:
        pass
    else:
        raise AssertionError("the interrupted run was expected to stop mid-cell")
print("anytime smoke: run interrupted mid-valuation, checkpoint on disk")
EOF

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} $CLI resume \
    --run-dir "$SMOKE_DIR/resume" --store "$SMOKE_DIR/store.sqlite" --json \
    > "$SMOKE_DIR/resumed.json"

python - "$SMOKE_DIR" <<'EOF'
import json, os, sys

smoke_dir = sys.argv[1]
resumed = json.load(open(os.path.join(smoke_dir, "resumed.json")))
assert resumed["cells_continued"] == 1, (
    f"resume should continue inside the interrupted cell: {resumed}"
)
assert resumed["fl_trainings"] == 0, (
    f"resumed run retrained {resumed['fl_trainings']} coalitions; "
    "the warm store should have served them all"
)

def values(run):
    results = os.path.join(smoke_dir, run, "results")
    (name,) = os.listdir(results)
    return json.load(open(os.path.join(results, name)))["result"]["values"]

assert values("resume") == values("full"), "resumed values diverged from full run"
print(
    f"anytime smoke (resume) ok: continued mid-cell, 0 trainings "
    f"(store_hits={resumed['store_hits']}), values bitwise-identical"
)
EOF
