"""Tests for straggler/dropout support in the FL substrate."""

import numpy as np
import pytest

from repro.datasets import make_classification_blobs, partition_iid
from repro.fl import FLClient, FLConfig, FederatedTrainer
from repro.models import LogisticRegressionModel
from repro.utils.rng import fixed_rng


@pytest.fixture
def clients_data():
    dataset = make_classification_blobs(120, n_features=4, n_classes=3, seed=0)
    return partition_iid(dataset, 3, seed=0)


def model_factory():
    return LogisticRegressionModel(n_features=4, n_classes=3, learning_rate=0.5)


class TestFLClientDropout:
    def test_invalid_probability_rejected(self, clients_data):
        with pytest.raises(ValueError, match="dropout_p"):
            FLClient(0, clients_data[0], dropout_p=1.5)

    def test_full_dropout_returns_global_parameters(self, clients_data):
        client = FLClient(0, clients_data[0], dropout_p=1.0)
        model = model_factory()
        model.initialize(fixed_rng(0))
        before = model.get_parameters().copy()
        after = client.local_update(model, before, FLConfig(), seed=fixed_rng(1))
        assert np.array_equal(after, before)
        assert after is not before  # a copy, not an alias

    def test_zero_dropout_trains(self, clients_data):
        client = FLClient(0, clients_data[0], dropout_p=0.0)
        model = model_factory()
        model.initialize(fixed_rng(0))
        before = model.get_parameters().copy()
        after = client.local_update(model, before, FLConfig(), seed=fixed_rng(1))
        assert not np.array_equal(after, before)

    def test_drop_decision_is_seed_deterministic(self, clients_data):
        client = FLClient(0, clients_data[0], dropout_p=0.5)
        model = model_factory()
        model.initialize(fixed_rng(0))
        before = model.get_parameters().copy()
        first = client.local_update(model, before, FLConfig(), seed=fixed_rng(7))
        second = client.local_update(model, before, FLConfig(), seed=fixed_rng(7))
        assert np.array_equal(first, second)

    def test_reliable_clients_stream_is_untouched(self, clients_data):
        """dropout_p=0 must not consume from the round seed, so adding
        stragglers elsewhere never perturbs honest clients' training."""
        plain = FLClient(0, clients_data[0])
        explicit = FLClient(0, clients_data[0], dropout_p=0.0)
        model = model_factory()
        model.initialize(fixed_rng(0))
        before = model.get_parameters().copy()
        a = plain.local_update(model, before, FLConfig(), seed=fixed_rng(3))
        b = explicit.local_update(model, before, FLConfig(), seed=fixed_rng(3))
        assert np.array_equal(a, b)


class TestFederatedTrainerDropout:
    def test_dropout_length_mismatch_rejected(self, clients_data):
        with pytest.raises(ValueError, match="one probability per client"):
            FederatedTrainer(
                clients_data, clients_data[0], model_factory, seed=0,
                client_dropout=[0.5],
            )

    def test_dropout_out_of_range_rejected(self, clients_data):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FederatedTrainer(
                clients_data, clients_data[0], model_factory, seed=0,
                client_dropout=[0.0, 0.0, 1.5],
            )

    def test_dropout_rejected_for_non_parametric_models(self, clients_data):
        """Pooled training has no rounds to drop out of — a straggler task on
        a tree model must fail loudly, not silently model nothing."""
        from repro.models import GradientBoostedTrees

        with pytest.raises(ValueError, match="parametric"):
            FederatedTrainer(
                clients_data,
                clients_data[0],
                lambda: GradientBoostedTrees(n_classes=3, n_rounds=2),
                seed=0,
                client_dropout=[0.0, 0.0, 0.5],
            )

    def test_all_zero_dropout_normalises_to_none(self, clients_data):
        trainer = FederatedTrainer(
            clients_data, clients_data[0], model_factory, seed=0,
            client_dropout=[0.0, 0.0, 0.0],
        )
        assert trainer.client_dropout is None

    def test_full_straggler_changes_nothing_but_dilutes(self, clients_data):
        """A p=1 straggler acts on the aggregate only through dilution: the
        coalition still trains deterministically."""
        reliable = FederatedTrainer(
            clients_data, clients_data[0], model_factory, seed=0
        )
        straggling = FederatedTrainer(
            clients_data, clients_data[0], model_factory, seed=0,
            client_dropout=[0.0, 0.0, 1.0],
        )
        coalition = {0, 1, 2}
        assert straggling.utility(coalition) == straggling.utility(coalition)
        # The straggler's missing updates change the trained model (accuracy
        # may coincide on a small test set, so compare parameters).
        reliable_model, _ = reliable.train_coalition(coalition)
        straggling_model, _ = straggling.train_coalition(coalition)
        assert not np.array_equal(
            reliable_model.get_parameters(), straggling_model.get_parameters()
        )

    def test_dropout_does_not_affect_unrelated_coalitions(self, clients_data):
        reliable = FederatedTrainer(
            clients_data, clients_data[0], model_factory, seed=0
        )
        straggling = FederatedTrainer(
            clients_data, clients_data[0], model_factory, seed=0,
            client_dropout=[0.0, 0.0, 1.0],
        )
        assert reliable.utility({0, 1}) == straggling.utility({0, 1})
