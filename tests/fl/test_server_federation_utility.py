"""Tests for the FL server, the coalition trainer and the utility oracles."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    make_adult_like,
    make_classification_blobs,
    partition_by_group,
    partition_iid,
    train_test_split,
)
from repro.fl import (
    CoalitionUtility,
    FLClient,
    FLConfig,
    FLServer,
    FederatedTrainer,
    TabularUtility,
    train_federated,
)
from repro.models import GradientBoostedTrees, LogisticRegressionModel


@pytest.fixture(scope="module")
def federation():
    pooled = make_classification_blobs(
        200, n_features=5, n_classes=3, class_separation=3.0, cluster_std=1.0, seed=0
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=0)
    clients = partition_iid(train, 4, seed=0)
    return clients, test


def logistic_factory():
    return LogisticRegressionModel(n_features=5, n_classes=3, epochs=3)


class TestFLServer:
    def test_training_improves_utility(self, federation):
        clients, test = federation
        model = logistic_factory()
        model.initialize(0)
        untrained_accuracy = model.evaluate(test)
        server = FLServer(model, [FLClient(i, d) for i, d in enumerate(clients)], FLConfig(rounds=4))
        server.train(seed=0)
        assert model.evaluate(test) > untrained_accuracy

    def test_history_recorded_when_requested(self, federation):
        clients, test = federation
        model = logistic_factory()
        server = FLServer(
            model,
            [FLClient(i, d) for i, d in enumerate(clients)],
            FLConfig(rounds=3, record_history=True),
        )
        server.train(seed=0)
        assert server.history is not None
        assert server.history.n_rounds == 3
        assert server.history.clients() == [0, 1, 2, 3]

    def test_history_absent_by_default(self, federation):
        clients, _ = federation
        server = FLServer(logistic_factory(), [FLClient(i, d) for i, d in enumerate(clients)])
        server.train(seed=0)
        assert server.history is None

    def test_client_fraction_selects_subset(self, federation):
        clients, _ = federation
        server = FLServer(
            logistic_factory(),
            [FLClient(i, d) for i, d in enumerate(clients)],
            FLConfig(rounds=2, client_fraction=0.5, record_history=True),
        )
        server.train(seed=0)
        for record in server.history.rounds:
            assert len(record.updates) == 2

    def test_no_clients_raises(self):
        with pytest.raises(ValueError):
            FLServer(logistic_factory(), [])

    def test_non_parametric_model_raises(self, federation):
        clients, _ = federation
        with pytest.raises(TypeError):
            FLServer(GradientBoostedTrees(n_classes=3), [FLClient(0, clients[0])])

    def test_training_is_deterministic_given_seed(self, federation):
        clients, _ = federation

        def run():
            model = logistic_factory()
            server = FLServer(model, [FLClient(i, d) for i, d in enumerate(clients)], FLConfig(rounds=2))
            server.train(seed=7)
            return model.get_parameters()

        assert np.allclose(run(), run())

    def test_train_federated_wrapper(self, federation):
        clients, _ = federation
        model, history = train_federated(
            logistic_factory(), clients, FLConfig(rounds=2, record_history=True), seed=0
        )
        assert model.is_initialized
        assert history.n_rounds == 2


class TestFederatedTrainer:
    def test_utility_grows_with_coalition_size_on_average(self, federation):
        clients, test = federation
        trainer = FederatedTrainer(clients, test, logistic_factory, FLConfig(rounds=3), seed=0)
        empty = trainer.utility(frozenset())
        singleton = trainer.utility(frozenset({0}))
        grand = trainer.utility(frozenset(range(4)))
        assert singleton >= empty
        assert grand >= empty

    def test_unknown_client_raises(self, federation):
        clients, test = federation
        trainer = FederatedTrainer(clients, test, logistic_factory, seed=0)
        with pytest.raises(ValueError):
            trainer.utility(frozenset({9}))

    def test_same_coalition_same_model(self, federation):
        clients, test = federation
        trainer = FederatedTrainer(clients, test, logistic_factory, FLConfig(rounds=2), seed=0)
        a, _ = trainer.train_coalition({0, 2})
        b, _ = trainer.train_coalition({2, 0})
        assert np.allclose(a.get_parameters(), b.get_parameters())

    def test_empty_coalition_model_is_untrained(self, federation):
        clients, test = federation
        trainer = FederatedTrainer(clients, test, logistic_factory, seed=0)
        model, history = trainer.train_coalition(frozenset())
        assert history is None
        assert model.is_initialized

    def test_grand_coalition_history(self, federation):
        clients, test = federation
        trainer = FederatedTrainer(clients, test, logistic_factory, FLConfig(rounds=2), seed=0)
        history = trainer.grand_coalition_history()
        assert history.n_rounds == 2
        assert history.clients() == [0, 1, 2, 3]

    def test_nonparametric_model_uses_pooled_training(self):
        pooled = make_adult_like(250, seed=1)
        train, test = train_test_split(pooled, test_fraction=0.2, seed=1)
        clients = partition_by_group(train, 3, seed=1)
        trainer = FederatedTrainer(
            clients, test, lambda: GradientBoostedTrees(n_classes=2, n_rounds=4), seed=1
        )
        utility = trainer.utility(frozenset({0, 1, 2}))
        assert 0.0 <= utility <= 1.0
        with pytest.raises(TypeError):
            trainer.grand_coalition_history()

    def test_requires_at_least_one_client(self, federation):
        _, test = federation
        with pytest.raises(ValueError):
            FederatedTrainer([], test, logistic_factory)


class TestCoalitionUtility:
    def test_caching_avoids_retraining(self, federation):
        clients, test = federation
        utility = CoalitionUtility(clients, test, logistic_factory, FLConfig(rounds=2), seed=0)
        first = utility(frozenset({0, 1}))
        second = utility(frozenset({1, 0}))
        assert first == second
        assert utility.evaluations == 1
        assert utility.cache_hits == 1

    def test_reset_cache(self, federation):
        clients, test = federation
        utility = CoalitionUtility(clients, test, logistic_factory, FLConfig(rounds=2), seed=0)
        utility(frozenset({0}))
        utility.reset_cache()
        assert utility.evaluations == 0

    def test_modeled_time(self, federation):
        clients, test = federation
        utility = CoalitionUtility(
            clients, test, logistic_factory, FLConfig(rounds=2), seed=0, artificial_cost=2.0
        )
        utility(frozenset({0}))
        utility(frozenset({1}))
        assert utility.modeled_time == pytest.approx(4.0)

    def test_n_clients(self, federation):
        clients, test = federation
        utility = CoalitionUtility(clients, test, logistic_factory, seed=0)
        assert utility.n_clients == 4


class TestTabularUtility:
    def test_lookup_and_counter(self, table1_utility):
        assert table1_utility(frozenset({0})) == 0.50
        assert table1_utility.evaluations == 1

    def test_missing_coalition_raises(self, table1_utility):
        with pytest.raises(KeyError):
            table1_utility(frozenset({0, 1, 2, 3}))

    def test_from_function_materialises_all_coalitions(self):
        oracle = TabularUtility.from_function(3, lambda s: float(len(s)))
        assert oracle(frozenset({0, 1, 2})) == 3.0
        assert oracle(frozenset()) == 0.0


class TestCoalitionUtilityLifecycle:
    def test_context_manager_closes_owned_store(self, federation, tmp_path):
        clients, test = federation
        store_path = str(tmp_path / "utilities.sqlite")
        with CoalitionUtility(
            clients,
            test,
            logistic_factory,
            FLConfig(rounds=2),
            seed=0,
            store=store_path,
            store_namespace="lifecycle-test",
        ) as utility:
            fresh = utility(frozenset({0, 1}))
            handle = utility.store
            assert handle is not None
        assert handle.closed  # owned path store released deterministically

        # A second oracle over the same store serves the value bitwise without
        # training (the trainer would produce it identically, but the counter
        # proves no training ran).
        with CoalitionUtility(
            clients,
            test,
            logistic_factory,
            FLConfig(rounds=2),
            seed=0,
            store=store_path,
            store_namespace="lifecycle-test",
        ) as utility:
            assert utility(frozenset({0, 1})) == fresh
            assert utility.evaluations == 0
            assert utility.store_hits == 1

    def test_close_is_idempotent(self, federation):
        clients, test = federation
        utility = CoalitionUtility(clients, test, logistic_factory, seed=0)
        utility.close()
        utility.close()

    def test_attach_store_requires_unique_namespace_from_caller(self, federation):
        from repro.store import MemoryUtilityStore

        clients, test = federation
        store = MemoryUtilityStore()
        utility = CoalitionUtility(clients, test, logistic_factory, seed=0)
        utility.attach_store(store, "handpicked-namespace")
        utility(frozenset({0}))
        assert len(store) == 1
        utility.close()
        assert not store.closed  # instance stores belong to the caller
