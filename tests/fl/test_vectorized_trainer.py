"""VectorizedCoalitionTrainer vs the serial FederatedTrainer, seed-for-seed.

The equivalence contract (docs/performance.md): for every supported model and
FL algorithm the vectorized engine replays the serial path's RNG streams and
update schedule, and on this stack its utilities come out bitwise-identical.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import (
    FederatedTrainer,
    FLConfig,
    VectorizedCoalitionTrainer,
    vectorization_blocker,
)
from repro.models import (
    GradientBoostedTrees,
    LogisticRegressionModel,
    MLPClassifier,
    SimpleCNN,
)

N = 5
SEED = 3


def all_coalitions(n):
    out = [frozenset()]
    for size in range(1, n + 1):
        out.extend(frozenset(c) for c in combinations(range(n), size))
    return out


@pytest.fixture(scope="module")
def clients_and_test():
    pooled = make_classification_blobs(220, n_features=4, n_classes=3, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    return partition_iid(train, N, seed=SEED), test


def logistic_factory():
    return LogisticRegressionModel(n_features=4, n_classes=3, epochs=2)


def mlp_factory():
    return MLPClassifier(n_features=4, n_classes=3, hidden_sizes=(6,), batch_size=8)


def build(clients_and_test, factory=logistic_factory, config=None, dropout=None):
    clients, test = clients_and_test
    return FederatedTrainer(
        clients, test, factory, config=config, seed=SEED, client_dropout=dropout
    )


def assert_parity(trainer, chunk_size=64, coalitions=None):
    coalitions = coalitions if coalitions is not None else all_coalitions(N)
    engine = VectorizedCoalitionTrainer(trainer, chunk_size=chunk_size)
    serial = np.asarray([trainer.utility(c) for c in coalitions])
    vectorized = np.asarray(engine.utilities(coalitions))
    np.testing.assert_array_equal(serial, vectorized)


class TestSeedForSeedParity:
    @pytest.mark.parametrize("factory", [logistic_factory, mlp_factory])
    def test_fedavg(self, clients_and_test, factory):
        assert_parity(build(clients_and_test, factory, FLConfig(rounds=3, local_epochs=2)))

    def test_fedprox(self, clients_and_test):
        config = FLConfig(rounds=2, local_epochs=2, algorithm="fedprox", proximal_mu=0.3)
        assert_parity(build(clients_and_test, logistic_factory, config))

    def test_fedsgd(self, clients_and_test):
        config = FLConfig(rounds=3, algorithm="fedsgd")
        assert_parity(build(clients_and_test, logistic_factory, config))

    def test_straggler_dropout(self, clients_and_test):
        trainer = build(
            clients_and_test,
            mlp_factory,
            FLConfig(rounds=3, local_epochs=1),
            dropout=[0.0, 0.6, 0.3, 0.0, 0.9],
        )
        assert_parity(trainer)

    def test_config_batch_size_override(self, clients_and_test):
        config = FLConfig(rounds=2, local_epochs=1, batch_size=7)
        assert_parity(build(clients_and_test, logistic_factory, config))

    def test_empty_and_duplicate_coalitions(self, clients_and_test):
        trainer = build(clients_and_test)
        plan = [frozenset(), frozenset({1, 2}), frozenset(), frozenset({1, 2})]
        assert_parity(trainer, coalitions=plan)

    def test_null_clients_match_serial(self, clients_and_test):
        from repro.datasets import Dataset

        clients, test = clients_and_test
        clients = list(clients[:3]) + [Dataset.empty_like(test, name="null")]
        trainer = FederatedTrainer(clients, test, logistic_factory, seed=SEED)
        engine = VectorizedCoalitionTrainer(trainer)
        plan = all_coalitions(4)
        serial = np.asarray([trainer.utility(c) for c in plan])
        np.testing.assert_array_equal(serial, np.asarray(engine.utilities(plan)))

    def test_chunking_is_value_neutral(self, clients_and_test):
        trainer = build(clients_and_test)
        plan = all_coalitions(N)
        small = VectorizedCoalitionTrainer(trainer, chunk_size=3).utilities(plan)
        large = VectorizedCoalitionTrainer(trainer, chunk_size=256).utilities(plan)
        np.testing.assert_array_equal(np.asarray(small), np.asarray(large))


class TestGating:
    def test_unknown_client_ids_raise(self, clients_and_test):
        engine = VectorizedCoalitionTrainer(build(clients_and_test))
        with pytest.raises(ValueError, match="unknown client ids"):
            engine.utilities([{0, 99}])

    def test_invalid_chunk_size(self, clients_and_test):
        with pytest.raises(ValueError, match="chunk_size"):
            VectorizedCoalitionTrainer(build(clients_and_test), chunk_size=0)

    def test_non_parametric_model_blocked(self, clients_and_test):
        clients, test = clients_and_test
        trainer = FederatedTrainer(
            clients, test, lambda: GradientBoostedTrees(n_classes=3, n_rounds=2), seed=SEED
        )
        assert "non-parametric" in vectorization_blocker(trainer)
        with pytest.raises(ValueError, match="non-parametric"):
            VectorizedCoalitionTrainer(trainer)

    def test_model_without_kernels_blocked(self):
        from repro.datasets import make_mnist_like

        pooled = make_mnist_like(n_samples=60, image_size=6, seed=1)
        train, test = train_test_split(pooled, test_fraction=0.3, seed=1)
        clients = partition_iid(train, 2, seed=1)
        trainer = FederatedTrainer(
            clients, test, lambda: SimpleCNN(image_size=6, n_classes=2), seed=SEED
        )
        assert "no vectorized batched kernels" in vectorization_blocker(trainer)

    def test_partial_participation_blocked(self, clients_and_test):
        trainer = build(
            clients_and_test, logistic_factory, FLConfig(rounds=2, client_fraction=0.5)
        )
        assert "client_fraction" in vectorization_blocker(trainer)

    def test_preinitialized_factory_blocked(self, clients_and_test):
        clients, test = clients_and_test

        def factory():
            return LogisticRegressionModel(n_features=4, n_classes=3).initialize(0)

        trainer = FederatedTrainer(clients, test, factory, seed=SEED)
        assert "pre-initializes" in vectorization_blocker(trainer)

    def test_supported_trainer_has_no_blocker(self, clients_and_test):
        assert vectorization_blocker(build(clients_and_test)) is None
