"""FLConfig eager validation: bad hyperparameters fail at construction,
with a ValueError naming the offending field — never rounds-deep inside a
coalition-training loop."""

import numpy as np
import pytest

from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import FederatedTrainer, FLConfig
from repro.models import LogisticRegressionModel


class TestFieldValidation:
    @pytest.mark.parametrize("rounds", [0, -1, -100])
    def test_non_positive_rounds(self, rounds):
        with pytest.raises(ValueError, match="rounds"):
            FLConfig(rounds=rounds)

    @pytest.mark.parametrize("local_epochs", [0, -2])
    def test_non_positive_local_epochs(self, local_epochs):
        with pytest.raises(ValueError, match="local_epochs"):
            FLConfig(local_epochs=local_epochs)

    @pytest.mark.parametrize("batch_size", [0, -8])
    def test_non_positive_batch_size(self, batch_size):
        with pytest.raises(ValueError, match="batch_size"):
            FLConfig(batch_size=batch_size)

    @pytest.mark.parametrize("client_fraction", [0.0, -0.5, 1.5, 2.0])
    def test_out_of_range_client_fraction(self, client_fraction):
        with pytest.raises(ValueError, match="client_fraction"):
            FLConfig(client_fraction=client_fraction)

    def test_negative_proximal_mu(self):
        with pytest.raises(ValueError, match="proximal_mu"):
            FLConfig(proximal_mu=-0.1)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            FLConfig(algorithm="fancyavg")

    def test_defaults_are_valid(self):
        config = FLConfig()
        assert config.batch_size is None  # model's own batch size rules

    def test_valid_batch_size_accepted(self):
        assert FLConfig(batch_size=16).batch_size == 16


class TestBatchSizeOverride:
    """config.batch_size overrides the model's mini-batch size in FL runs."""

    @staticmethod
    def build(config, model_batch_size):
        pooled = make_classification_blobs(120, n_features=4, n_classes=2, seed=9)
        train, test = train_test_split(pooled, test_fraction=0.25, seed=9)
        clients = partition_iid(train, 3, seed=9)
        return FederatedTrainer(
            clients,
            test,
            lambda: LogisticRegressionModel(
                n_features=4, n_classes=2, batch_size=model_batch_size
            ),
            config=config,
            seed=9,
        )

    def test_override_equals_native_batch_size(self):
        overridden = self.build(FLConfig(rounds=2, batch_size=8), model_batch_size=32)
        native = self.build(FLConfig(rounds=2), model_batch_size=8)
        for coalition in [{0}, {0, 1}, {0, 1, 2}]:
            assert overridden.utility(coalition) == native.utility(coalition)

    def test_override_restored_on_caller_owned_model(self):
        """The override is per-run: a user's model keeps its own batch_size."""
        from repro.fl import train_federated

        pooled = make_classification_blobs(60, n_features=4, n_classes=2, seed=9)
        train, test = train_test_split(pooled, test_fraction=0.3, seed=9)
        model = LogisticRegressionModel(n_features=4, n_classes=2, batch_size=32)
        train_federated(model, [train], config=FLConfig(rounds=1, batch_size=8), seed=9)
        assert model.batch_size == 32

    def test_none_keeps_model_batch_size(self):
        default = self.build(FLConfig(rounds=2), model_batch_size=32)
        explicit = self.build(FLConfig(rounds=2, batch_size=32), model_batch_size=32)
        values = [{0, 1}, {1, 2}]
        for coalition in values:
            assert default.utility(coalition) == explicit.utility(coalition)
