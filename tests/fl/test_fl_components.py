"""Tests for the FL simulator building blocks: config, client, aggregation, history."""

import numpy as np
import pytest

from repro.datasets import Dataset, make_classification_blobs
from repro.fl import (
    ClientUpdate,
    FLClient,
    FLConfig,
    RoundRecord,
    TrainingHistory,
    fedavg_aggregate,
    weighted_average,
)
from repro.models import LogisticRegressionModel


@pytest.fixture
def small_dataset():
    return make_classification_blobs(40, n_features=4, n_classes=2, seed=0)


class TestFLConfig:
    def test_defaults_valid(self):
        config = FLConfig()
        assert config.rounds == 5
        assert config.algorithm == "fedavg"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"local_epochs": 0},
            {"algorithm": "fancy"},
            {"proximal_mu": -1.0},
            {"client_fraction": 0.0},
            {"client_fraction": 1.5},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_with_history_copy(self):
        config = FLConfig(rounds=2, record_history=False)
        copied = config.with_history()
        assert copied.record_history
        assert copied.rounds == 2
        assert not config.record_history


class TestAggregation:
    def test_weighted_average_basic(self):
        result = weighted_average([np.array([0.0, 0.0]), np.array([2.0, 4.0])], [1.0, 3.0])
        assert np.allclose(result, [1.5, 3.0])

    def test_zero_weights_fall_back_to_mean(self):
        result = weighted_average([np.array([0.0]), np.array([2.0])], [0.0, 0.0])
        assert np.allclose(result, [1.0])

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_average([np.zeros(2)], [-1.0])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            weighted_average([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_average([np.zeros(2)], [1.0, 2.0])

    def test_fedavg_weights_by_sample_count(self):
        result = fedavg_aggregate([np.array([0.0]), np.array([10.0])], [10, 30])
        assert np.allclose(result, [7.5])

    def test_single_client_identity(self):
        vector = np.array([1.0, -2.0, 3.0])
        assert np.allclose(fedavg_aggregate([vector], [5]), vector)


class TestFLClient:
    def test_local_update_changes_parameters(self, small_dataset):
        client = FLClient(0, small_dataset)
        model = LogisticRegressionModel(n_features=4, n_classes=2, epochs=3)
        model.initialize(0)
        start = model.get_parameters()
        updated = client.local_update(model, start, FLConfig(rounds=1, local_epochs=2), seed=0)
        assert not np.allclose(updated, start)

    def test_empty_client_returns_global_unchanged(self, small_dataset):
        client = FLClient(1, Dataset.empty_like(small_dataset))
        assert client.is_empty
        model = LogisticRegressionModel(n_features=4, n_classes=2)
        model.initialize(0)
        start = model.get_parameters()
        updated = client.local_update(model, start, FLConfig(), seed=0)
        assert np.allclose(updated, start)

    def test_fedsgd_takes_single_gradient_step(self, small_dataset):
        client = FLClient(0, small_dataset)
        model = LogisticRegressionModel(n_features=4, n_classes=2, learning_rate=0.1)
        model.initialize(0)
        start = model.get_parameters()
        model.set_parameters(start)
        gradient = model.gradient_on(small_dataset)
        expected = start - 0.1 * gradient
        updated = client.local_update(model, start, FLConfig(algorithm="fedsgd"), seed=0)
        assert np.allclose(updated, expected)

    def test_fedprox_stays_closer_to_global(self, small_dataset):
        client = FLClient(0, small_dataset)
        start = LogisticRegressionModel(n_features=4, n_classes=2).initialize(0).get_parameters()

        def run(config):
            model = LogisticRegressionModel(n_features=4, n_classes=2, epochs=10)
            model.initialize(0)
            return client.local_update(model, start, config, seed=0)

        fedavg_update = run(FLConfig(algorithm="fedavg", local_epochs=10))
        fedprox_update = run(FLConfig(algorithm="fedprox", proximal_mu=1.0, local_epochs=10))
        assert np.linalg.norm(fedprox_update - start) < np.linalg.norm(fedavg_update - start)

    def test_n_samples(self, small_dataset):
        assert FLClient(0, small_dataset).n_samples == 40


class TestTrainingHistory:
    def _make_history(self):
        history = TrainingHistory(initial_parameters=np.zeros(3))
        record = RoundRecord(round_index=0, global_before=np.zeros(3))
        record.add_update(ClientUpdate(client_id=0, parameters=np.array([1.0, 0.0, 0.0]), n_samples=10))
        record.add_update(ClientUpdate(client_id=1, parameters=np.array([0.0, 2.0, 0.0]), n_samples=30))
        record.global_after = record.aggregate_subset({0, 1})
        history.add_round(record)
        return history

    def test_client_delta(self):
        history = self._make_history()
        delta = history.rounds[0].client_delta(0)
        assert np.allclose(delta, [1.0, 0.0, 0.0])

    def test_aggregate_subset_weighted(self):
        history = self._make_history()
        aggregated = history.rounds[0].aggregate_subset({0, 1})
        assert np.allclose(aggregated, [0.25, 1.5, 0.0])

    def test_aggregate_subset_missing_clients(self):
        history = self._make_history()
        aggregated = history.rounds[0].aggregate_subset({5})
        assert np.allclose(aggregated, np.zeros(3))

    def test_reconstruct_sequential_empty_coalition(self):
        history = self._make_history()
        assert np.allclose(history.reconstruct_sequential(frozenset()), np.zeros(3))

    def test_reconstruct_sequential_single_client(self):
        history = self._make_history()
        reconstructed = history.reconstruct_sequential({1})
        assert np.allclose(reconstructed, [0.0, 2.0, 0.0])

    def test_reconstruct_sequential_full_matches_fedavg(self):
        history = self._make_history()
        reconstructed = history.reconstruct_sequential({0, 1})
        assert np.allclose(reconstructed, history.rounds[0].global_after)

    def test_reconstruct_round_bounds(self):
        history = self._make_history()
        with pytest.raises(IndexError):
            history.reconstruct_round(3, {0})

    def test_clients_and_sizes(self):
        history = self._make_history()
        assert history.clients() == [0, 1]
        assert history.client_sizes[1] == 30
        assert history.n_rounds == 1

    def test_participating_clients(self):
        history = self._make_history()
        assert history.rounds[0].participating_clients() == [0, 1]
