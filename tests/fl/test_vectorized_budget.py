"""RAM-budgeted batch packing: chunk boundaries must never change utilities.

The budget only decides *where* a stacked batch is split; per-coalition seeds
make every slice independent, so a tiny ``max_batch_bytes`` (many chunks) and
an effectively unbounded one (one chunk) must produce bitwise-identical
utilities.  That is the contract the 500-client large-federation mode rests
on: memory drops to the budget, values do not move.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import FederatedTrainer, FLConfig, VectorizedCoalitionTrainer
from repro.fl.vectorized import (
    DEFAULT_MEMORY_FRACTION,
    FALLBACK_BATCH_BYTES,
    available_memory_bytes,
    resolve_batch_budget,
)
from repro.models import LogisticRegressionModel

N = 10
SEED = 11


@pytest.fixture(scope="module")
def trainer():
    pooled = make_classification_blobs(330, n_features=4, n_classes=3, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    clients = partition_iid(train, N, seed=SEED)
    return FederatedTrainer(
        clients,
        test,
        lambda: LogisticRegressionModel(n_features=4, n_classes=3, epochs=2),
        config=FLConfig(rounds=2, local_epochs=1),
        seed=SEED,
    )


def coalition_sample(n):
    """A mixed-size batch: singletons, all pairs of the first five, big sets."""
    keys = [frozenset({i}) for i in range(n)]
    keys += [frozenset(c) for c in combinations(range(5), 2)]
    keys += [frozenset(range(k)) for k in range(3, n + 1)]
    keys.append(frozenset())
    return keys


class TestBudgetSeedParity:
    def test_tiny_budget_matches_unbounded_bitwise(self, trainer):
        coalitions = coalition_sample(N)
        unbounded = VectorizedCoalitionTrainer(
            trainer, chunk_size=1024, max_batch_bytes=1 << 40
        )
        assert len(unbounded.plan_chunks(coalitions)) == 1
        starved = VectorizedCoalitionTrainer(trainer, chunk_size=1024, max_batch_bytes=1)
        assert len(starved.plan_chunks(coalitions)) == len(coalitions)
        reference = unbounded.utilities(coalitions)
        np.testing.assert_array_equal(
            np.asarray(reference), np.asarray(starved.utilities(coalitions))
        )

    def test_intermediate_budget_matches_too(self, trainer):
        coalitions = coalition_sample(N)
        unbounded = VectorizedCoalitionTrainer(
            trainer, chunk_size=1024, max_batch_bytes=1 << 40
        )
        # A budget of ~3 grand coalitions forces a multi-chunk, multi-size mix.
        budget = 3 * unbounded.estimated_coalition_bytes(frozenset(range(N)))
        chunked = VectorizedCoalitionTrainer(
            trainer, chunk_size=1024, max_batch_bytes=budget
        )
        n_chunks = len(chunked.plan_chunks(coalitions))
        assert 1 < n_chunks < len(coalitions)
        np.testing.assert_array_equal(
            np.asarray(unbounded.utilities(coalitions)),
            np.asarray(chunked.utilities(coalitions)),
        )

    def test_budget_matches_serial_path(self, trainer):
        coalitions = [frozenset(), frozenset({0}), frozenset({1, 3}), frozenset(range(N))]
        engine = VectorizedCoalitionTrainer(trainer, max_batch_bytes=1)
        serial = np.asarray([trainer.utility(c) for c in coalitions])
        np.testing.assert_array_equal(serial, np.asarray(engine.utilities(coalitions)))


class TestPlanChunks:
    def test_order_preserved_and_complete(self, trainer):
        engine = VectorizedCoalitionTrainer(trainer, chunk_size=3, max_batch_bytes=1 << 40)
        coalitions = coalition_sample(N)
        chunks = engine.plan_chunks(coalitions)
        assert [key for chunk in chunks for key in chunk] == coalitions
        assert all(len(chunk) <= 3 for chunk in chunks)

    def test_every_chunk_within_byte_budget_or_singleton(self, trainer):
        engine = VectorizedCoalitionTrainer(trainer, chunk_size=1024, max_batch_bytes=1)
        chunks = engine.plan_chunks(coalition_sample(N))
        # An oversized single coalition still trains: budget bounds batching,
        # it cannot shrink one model.
        assert all(len(chunk) == 1 for chunk in chunks)
        roomy = VectorizedCoalitionTrainer(
            trainer,
            chunk_size=1024,
            max_batch_bytes=4 * engine.estimated_coalition_bytes(frozenset(range(N))),
        )
        for chunk in roomy.plan_chunks(coalition_sample(N)):
            assert (
                len(chunk) == 1
                or roomy.estimated_batch_bytes(chunk) <= roomy.max_batch_bytes
            )

    def test_estimates_grow_with_membership(self, trainer):
        engine = VectorizedCoalitionTrainer(trainer)
        small = engine.estimated_coalition_bytes(frozenset({0}))
        large = engine.estimated_coalition_bytes(frozenset(range(N)))
        assert 0 < small < large
        assert engine.estimated_batch_bytes(
            [frozenset({0}), frozenset(range(N))]
        ) == small + large


class TestBudgetResolution:
    def test_explicit_budget_wins(self):
        assert resolve_batch_budget(123) == 123
        with pytest.raises(ValueError):
            resolve_batch_budget(0)

    def test_auto_detection_uses_available_ram(self):
        # MemAvailable moves between probes, so bound rather than equate:
        # the budget is a fraction of RAM, never more than what is available.
        available = available_memory_bytes()
        resolved = resolve_batch_budget(None)
        if available is None:
            assert resolved == FALLBACK_BATCH_BYTES
        else:
            assert 0 < resolved <= available
            assert resolved <= int(2 * DEFAULT_MEMORY_FRACTION * available)

    def test_meminfo_probe_on_linux(self):
        # The suite runs on Linux, where /proc/meminfo must parse.
        available = available_memory_bytes()
        assert available is None or available > 0

    def test_trainer_defaults_to_auto_budget(self, trainer):
        engine = VectorizedCoalitionTrainer(trainer)
        assert engine.max_batch_bytes >= 1
