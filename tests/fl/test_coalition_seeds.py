"""Regression tests for per-coalition training-seed derivation.

The original seed derivation hashed only the *sum* of member indices, so
distinct coalitions with equal index sums (e.g. ``{0, 3}`` and ``{1, 2}``)
shared a training seed and their utilities were silently correlated.  Seeds
are now derived from a SHA-256 hash of the sorted member tuple mixed with the
base seed: order-independent, process-stable and collision-resistant.
"""

import itertools

import pytest

from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import FLConfig, FederatedTrainer
from repro.models import LogisticRegressionModel
from repro.utils.combinatorics import all_coalitions


def make_trainer(n_clients: int, seed: int = 0) -> FederatedTrainer:
    pooled = make_classification_blobs(
        40 * n_clients, n_features=4, n_classes=2, seed=seed
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=seed)
    clients = partition_iid(train, n_clients, seed=seed)
    return FederatedTrainer(
        clients,
        test,
        lambda: LogisticRegressionModel(n_features=4, n_classes=2, epochs=2),
        FLConfig(rounds=2),
        seed=seed,
    )


class TestCoalitionSeedDerivation:
    def test_equal_index_sums_get_different_seeds(self):
        """The headline regression: {0, 3} vs {1, 2} (both sum to 3)."""
        trainer = make_trainer(4)
        assert trainer._coalition_seed(frozenset({0, 3})) != trainer._coalition_seed(
            frozenset({1, 2})
        )

    def test_all_coalitions_get_distinct_seeds(self):
        """No pair of the 2^8 coalitions of an 8-client federation collides."""
        trainer = make_trainer(8)
        seeds = [trainer._coalition_seed(c) for c in all_coalitions(8)]
        assert len(set(seeds)) == len(seeds)

    def test_seed_is_order_independent_and_deterministic(self):
        trainer = make_trainer(4)
        a = trainer._coalition_seed(frozenset([2, 0, 3]))
        b = trainer._coalition_seed(frozenset([3, 2, 0]))
        assert a == b
        # A second trainer with the same base seed derives the same seeds.
        again = make_trainer(4)
        assert again._coalition_seed(frozenset([2, 0, 3])) == a

    def test_different_base_seeds_decorrelate(self):
        one = make_trainer(4, seed=1)
        two = make_trainer(4, seed=2)
        coalition = frozenset({0, 2})
        assert one._coalition_seed(coalition) != two._coalition_seed(coalition)

    def test_seed_in_generator_range(self):
        trainer = make_trainer(4)
        for coalition in all_coalitions(4):
            seed = trainer._coalition_seed(coalition)
            assert 0 <= seed < 2**63 - 1

    @pytest.mark.parametrize("n", [5, 6])
    def test_no_equal_sum_collisions_exhaustively(self, n):
        """Every pair of distinct same-sum coalitions gets distinct seeds."""
        trainer = make_trainer(n)
        by_sum: dict[int, list[frozenset]] = {}
        for coalition in all_coalitions(n, include_empty=False):
            by_sum.setdefault(sum(coalition), []).append(coalition)
        for group in by_sum.values():
            for a, b in itertools.combinations(group, 2):
                assert trainer._coalition_seed(a) != trainer._coalition_seed(b), (
                    f"seed collision between {sorted(a)} and {sorted(b)}"
                )

    def test_utilities_of_equal_sum_coalitions_are_independent(self):
        """End to end: training {0,3} is not forced to mirror {1,2}.

        With the old sum-based seed both coalitions trained with identical
        RNG streams; with per-coalition SHA-256 seeds the trainings are
        independent (the values may still coincide numerically, but the
        *seeds* driving them provably differ — asserted above — so we only
        check the utilities are finite and reproducible here).
        """
        trainer = make_trainer(4)
        u_a = trainer.utility({0, 3})
        u_b = trainer.utility({1, 2})
        assert u_a == trainer.utility({0, 3})
        assert u_b == trainer.utility({1, 2})
