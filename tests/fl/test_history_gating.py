"""Plain coalition-utility evaluation must not allocate TrainingHistory.

Regression guard for the satellite fix: with a history-recording FLConfig
(as the gradient-based baselines use), ``FederatedTrainer.train_coalition``
used to record the full per-round trace for *every* utility evaluation —
O(rounds × clients × P) memory per coalition on large grids.  Now history is
only recorded when a caller explicitly asks for it.
"""

import numpy as np
import pytest

import repro.fl.server as server_module
from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import FederatedTrainer, FLConfig
from repro.models import LogisticRegressionModel

SEED = 5


@pytest.fixture()
def trainer():
    pooled = make_classification_blobs(120, n_features=4, n_classes=2, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    clients = partition_iid(train, 3, seed=SEED)
    return FederatedTrainer(
        clients,
        test,
        lambda: LogisticRegressionModel(n_features=4, n_classes=2, epochs=1),
        config=FLConfig(rounds=2, record_history=True),  # baseline-style config
        seed=SEED,
    )


@pytest.fixture()
def history_allocations(monkeypatch):
    """Count every TrainingHistory the FL server allocates."""
    allocations = []
    real = server_module.TrainingHistory

    def counting(*args, **kwargs):
        instance = real(*args, **kwargs)
        allocations.append(instance)
        return instance

    monkeypatch.setattr(server_module, "TrainingHistory", counting)
    return allocations


class TestHistoryGating:
    def test_utility_allocates_no_history(self, trainer, history_allocations):
        trainer.utility({0, 1})
        trainer.utility({0, 1, 2})
        assert history_allocations == []

    def test_train_coalition_returns_no_history_by_default(self, trainer):
        _, history = trainer.train_coalition({0, 1})
        assert history is None

    def test_train_coalition_records_when_asked(self, trainer, history_allocations):
        _, history = trainer.train_coalition({0, 1}, record_history=True)
        assert history is not None
        assert len(history_allocations) == 1
        assert len(history.rounds) == 2

    def test_grand_coalition_history_still_records(self, trainer, history_allocations):
        history = trainer.grand_coalition_history()
        assert history is not None
        assert len(history_allocations) == 1

    def test_history_gating_does_not_change_utilities(self, trainer):
        """Stripping history must be memory-only: same model, same value."""
        model_plain, _ = trainer.train_coalition({0, 2})
        model_recorded, _ = trainer.train_coalition({0, 2}, record_history=True)
        np.testing.assert_array_equal(
            model_plain.get_parameters(), model_recorded.get_parameters()
        )


class TestWithoutHistory:
    def test_without_history_copy(self):
        config = FLConfig(rounds=3, record_history=True)
        stripped = config.without_history()
        assert not stripped.record_history
        assert stripped.rounds == config.rounds

    def test_without_history_identity_when_off(self):
        config = FLConfig(rounds=3)
        assert config.without_history() is config

    def test_with_history_roundtrip(self):
        config = FLConfig(rounds=4, local_epochs=2, algorithm="fedprox")
        assert config.with_history().without_history() == config
