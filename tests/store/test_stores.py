"""Backend-agnostic contract tests for the persistent utility stores."""

import json
import os
import sqlite3

import pytest

from repro.store import (
    JsonlUtilityStore,
    MemoryUtilityStore,
    SqliteUtilityStore,
    open_store,
    utility_key,
)

BACKENDS = ("memory", "jsonl", "sqlite")


def make_store(backend: str, tmp_path):
    if backend == "memory":
        return MemoryUtilityStore()
    if backend == "jsonl":
        return JsonlUtilityStore(str(tmp_path / "store"))
    return SqliteUtilityStore(str(tmp_path / "store.sqlite"))


def reopen(store, backend: str, tmp_path):
    """Close and reopen the same on-disk store (fresh handle, fresh process
    semantics); memory stores are returned as-is since they have no disk."""
    if backend == "memory":
        return store
    store.close()
    return make_store(backend, tmp_path)


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreContract:
    def test_roundtrip_is_bitwise_exact(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        awkward = [0.1 + 0.2, 1.0 / 3.0, 1e-17, 0.8543291236471819]
        for index, value in enumerate(awkward):
            store.put(utility_key("ns", [index]), value)
        store = reopen(store, backend, tmp_path)
        for index, value in enumerate(awkward):
            assert store.get(utility_key("ns", [index])) == value  # bitwise
        store.close()

    def test_missing_key_is_none(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        assert store.get("ns:0,1") is None
        assert "ns:0,1" not in store
        store.close()

    def test_overwrite_last_wins(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("ns:0", 0.25)
        store.put("ns:0", 0.75)
        assert store.get("ns:0") == 0.75
        assert len(store) == 1
        store.close()

    def test_get_many_and_put_many(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put_many({"ns:0": 0.1, "ns:1": 0.2})
        found = store.get_many(["ns:0", "ns:1", "ns:2"])
        assert found == {"ns:0": 0.1, "ns:1": 0.2}
        store.close()

    def test_summary_groups_by_namespace(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put(utility_key("taskA", [0]), 0.5)
        store.put(utility_key("taskA", [1]), 0.6)
        store.put(utility_key("taskB", [0]), 0.7)
        summary = store.summary()
        assert summary["entries"] == 3
        assert summary["namespaces"] == {"taskA": 2, "taskB": 1}
        store.close()

    def test_gc_keep_namespace(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put(utility_key("keep", [0]), 0.5)
        store.put(utility_key("drop", [0]), 0.6)
        result = store.gc(keep_namespace="keep")
        assert result.dropped_namespaces == 1
        assert result.kept == 1
        assert store.get(utility_key("keep", [0])) == 0.5
        assert store.get(utility_key("drop", [0])) is None
        store.close()

    def test_stats_counters(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put("ns:0", 0.5)
        store.get("ns:0")
        store.get("ns:1")
        assert store.stats.puts == 1
        assert store.stats.gets == 2
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.hit_rate == pytest.approx(0.5)
        store.close()

    def test_context_manager_closes(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            store.put("ns:0", 0.5)
        assert store.closed
        with pytest.raises(ValueError):
            store.get("ns:0")


@pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
class TestPersistence:
    def test_values_survive_reopen(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put(utility_key("t", [0, 1]), 0.875)
        store = reopen(store, backend, tmp_path)
        assert store.get(utility_key("t", [0, 1])) == 0.875
        assert len(store) == 1
        store.close()

    def test_two_handles_share_entries(self, backend, tmp_path):
        """Two open handles model two worker processes sharing one store."""
        writer = make_store(backend, tmp_path)
        reader = make_store(backend, tmp_path)
        writer.put("t:0", 0.25)
        assert reader.get("t:0") == 0.25
        writer.close()
        reader.close()


class TestJsonlCorruptionRecovery:
    def test_garbage_lines_are_skipped_and_gced(self, tmp_path):
        store = JsonlUtilityStore(str(tmp_path / "store"))
        store.put("t:0", 0.5)
        store.put("t:1", 0.6)
        store.close()
        # Corrupt every shard file with a torn line and a wrong-typed record.
        directory = tmp_path / "store"
        for shard in os.listdir(directory):
            with open(directory / shard, "a", encoding="utf-8") as handle:
                handle.write("{torn json...\n")
                handle.write(json.dumps({"key": "t:9", "value": "high"}) + "\n")

        store = JsonlUtilityStore(str(tmp_path / "store"))
        assert store.get("t:0") == 0.5  # valid records still readable
        assert store.get("t:9") is None  # corrupt record reads as a miss
        assert store.stats.corrupt_entries > 0
        result = store.gc()
        assert result.dropped_corrupt > 0
        assert result.kept == 2
        # After compaction the shards parse cleanly again.
        store.close()
        store = JsonlUtilityStore(str(tmp_path / "store"))
        assert store.get("t:0") == 0.5
        assert store.stats.corrupt_entries == 0
        store.close()

    def test_gc_drops_superseded_duplicates(self, tmp_path):
        store = JsonlUtilityStore(str(tmp_path / "store"))
        store.put("t:0", 0.1)
        store.put("t:0", 0.2)
        result = store.gc()
        assert result.dropped_duplicates == 1
        assert store.get("t:0") == 0.2
        store.close()

    def test_partial_trailing_line_is_not_consumed(self, tmp_path):
        """A concurrent writer's half-flushed line must stay pending, then be
        picked up once complete."""
        store = JsonlUtilityStore(str(tmp_path / "store"))
        store.put("t:0", 0.5)
        shard_path = store._shard_for("t:1").path
        record = json.dumps({"key": "t:1", "value": 0.75})
        with open(shard_path, "a", encoding="utf-8") as handle:
            handle.write(record[:10])  # torn mid-record, no newline
        assert store.get("t:1") is None
        assert store.stats.corrupt_entries == 0  # pending, not corrupt
        with open(shard_path, "a", encoding="utf-8") as handle:
            handle.write(record[10:] + "\n")  # writer finishes
        assert store.get("t:1") == 0.75
        store.close()


class TestSqliteCorruptionRecovery:
    def test_non_real_value_reads_as_miss_and_gcs(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = SqliteUtilityStore(path)
        store.put("t:0", 0.5)
        store.put("t:1", 0.6)
        store.close()
        connection = sqlite3.connect(path)
        connection.execute("UPDATE utilities SET value = 'corrupt' WHERE key = 't:1'")
        connection.commit()
        connection.close()

        store = SqliteUtilityStore(path)
        assert store.get("t:0") == 0.5
        assert store.get("t:1") is None
        assert store.stats.corrupt_entries == 1
        result = store.gc()
        assert result.dropped_corrupt == 1
        assert result.kept == 1
        store.close()


class TestOpenStore:
    def test_suffix_dispatch(self, tmp_path):
        sqlite_store = open_store(tmp_path / "a.sqlite")
        jsonl_store = open_store(tmp_path / "a-directory")
        try:
            assert isinstance(sqlite_store, SqliteUtilityStore)
            assert isinstance(jsonl_store, JsonlUtilityStore)
        finally:
            sqlite_store.close()
            jsonl_store.close()

    def test_existing_directory_is_jsonl(self, tmp_path):
        (tmp_path / "store.d").mkdir()
        store = open_store(tmp_path / "store.d")
        assert isinstance(store, JsonlUtilityStore)
        store.close()

    def test_explicit_backend_wins(self, tmp_path):
        store = open_store(tmp_path / "odd-name.sqlite", backend="jsonl")
        assert isinstance(store, JsonlUtilityStore)
        store.close()

    def test_unknown_backend_raises(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(tmp_path / "x", backend="redis")
