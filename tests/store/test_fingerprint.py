"""Tests for the content-fingerprint scheme keying the persistent store."""

import hashlib
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentScale, TaskSpec, task_fingerprint
from repro.store import (
    HASHED_KEY_TAG,
    HASHED_KEY_THRESHOLD,
    canonical_json,
    canonicalize,
    coalition_token,
    fingerprint,
    key_namespace,
    utility_key,
)


class TestCanonicalize:
    def test_dict_key_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sets_are_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]
        assert canonicalize(frozenset({2, 1})) == [1, 2]

    def test_tuples_and_lists_agree(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_numpy_scalars_reduce_to_python(self):
        assert canonicalize(np.int64(7)) == 7
        assert fingerprint({"x": np.int64(7)}) == fingerprint({"x": 7})

    def test_dataclasses_become_dicts(self):
        scale = ExperimentScale.tiny()
        assert canonicalize(scale) == canonicalize(
            {f: getattr(scale, f) for f in scale.__dataclass_fields__}
        )

    def test_unstable_values_are_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(lambda: None)
        with pytest.raises(TypeError):
            fingerprint({"f": object()})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestUtilityKey:
    def test_coalition_token_sorts_members(self):
        assert coalition_token([3, 1, 2]) == "1,2,3"
        assert coalition_token(frozenset({2, 0})) == "0,2"

    def test_key_roundtrip(self):
        key = utility_key("deadbeef", [4, 1])
        assert key == "deadbeef:1,4"
        assert key_namespace(key) == "deadbeef"

    def test_namespace_must_not_collide_with_separator(self):
        with pytest.raises(ValueError):
            utility_key("a:b", [0])

    def test_distinct_payloads_distinct_fingerprints(self):
        base = {"task": "adult", "n": 3, "seed": 0}
        assert fingerprint(base) != fingerprint({**base, "seed": 1})
        assert fingerprint(base) != fingerprint({**base, "n": 4})


class TestHashedCoalitionKeys:
    """Large member sets key as fixed-width digests; small ones stay readable."""

    def test_small_coalitions_keep_the_legacy_plain_format(self):
        # Backward compatibility: every pre-hashing store entry was written
        # with this exact token, so tokens at or under the threshold must not
        # change by a single byte.
        assert coalition_token(range(HASHED_KEY_THRESHOLD)) == ",".join(
            str(m) for m in range(HASHED_KEY_THRESHOLD)
        )
        assert coalition_token([]) == ""
        assert coalition_token([5]) == "5"

    def test_large_coalitions_hash_to_fixed_width(self):
        for size in (HASHED_KEY_THRESHOLD + 1, 100, 500):
            token = coalition_token(range(size))
            tag, _, digest = token.partition(":")
            assert tag == HASHED_KEY_TAG
            assert len(digest) == 64
            assert set(digest) <= set("0123456789abcdef")

    def test_hashed_token_is_the_digest_of_the_plain_token(self):
        members = list(range(0, 60, 3))
        plain = ",".join(str(m) for m in members)
        expected = hashlib.sha256(plain.encode("ascii")).hexdigest()
        assert coalition_token(members) == f"{HASHED_KEY_TAG}:{expected}"

    def test_plain_tokens_can_never_alias_hashed_ones(self):
        # A plain token is digits and commas only, so the "h1:" namespace is
        # unreachable from the legacy format by construction.
        for size in range(HASHED_KEY_THRESHOLD + 1):
            assert ":" not in coalition_token(range(size))

    def test_namespace_extraction_survives_hashed_tokens(self):
        key = utility_key("deadbeef", range(500))
        assert key_namespace(key) == "deadbeef"
        assert key == f"deadbeef:{coalition_token(range(500))}"

    @settings(max_examples=200, deadline=None)
    @given(
        members=st.sets(st.integers(min_value=0, max_value=600), max_size=80),
        order_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_token_is_order_invariant(self, members, order_seed):
        shuffled = list(members)
        np.random.default_rng(order_seed).shuffle(shuffled)
        assert coalition_token(shuffled) == coalition_token(sorted(members))

    @settings(max_examples=200, deadline=None)
    @given(
        pair=st.tuples(
            st.sets(st.integers(min_value=0, max_value=600), max_size=80),
            st.sets(st.integers(min_value=0, max_value=600), max_size=80),
        )
    )
    def test_distinct_coalitions_get_distinct_keys(self, pair):
        first, second = pair
        if first == second:
            assert coalition_token(first) == coalition_token(second)
        else:
            assert coalition_token(first) != coalition_token(second)

    def test_no_collisions_across_a_dense_coalition_family(self):
        # Every contiguous slice of a 500-client federation plus all leave-
        # one-out variants of the grand coalition: thousands of near-identical
        # large coalitions must all key distinctly.
        everyone = list(range(500))
        family = [tuple(everyone[a:b]) for a in range(0, 500, 25) for b in range(a + 1, 501, 25)]
        family += [tuple(m for m in everyone if m != drop) for drop in everyone]
        tokens = {coalition_token(c) for c in family}
        assert len(tokens) == len(set(family))


class TestTaskFingerprints:
    def test_spec_matches_builder_fingerprint(self):
        """The spec and the builder must agree on the store namespace."""
        spec = TaskSpec(kind="adult", n_clients=3, model="logistic", scale="tiny", seed=7)
        direct = task_fingerprint(
            "adult", ExperimentScale.tiny(), 7, n_clients=3, model="logistic"
        )
        assert spec.fingerprint() == direct

    def test_seed_scale_and_model_all_segment(self):
        spec = TaskSpec(kind="adult", n_clients=3, model="logistic", scale="tiny", seed=0)
        assert spec.fingerprint() != spec.with_(seed=1).fingerprint()
        assert spec.fingerprint() != spec.with_(scale="small").fingerprint()
        assert spec.fingerprint() != spec.with_(model="mlp").fingerprint()
        assert spec.fingerprint() != spec.with_(n_clients=4).fingerprint()

    def test_generator_seed_has_no_fingerprint(self):
        rng = np.random.default_rng(0)
        assert task_fingerprint("adult", ExperimentScale.tiny(), rng, n_clients=3) is None

    def test_stable_across_processes(self):
        """hash()-style per-process salting must not leak into fingerprints."""
        spec = TaskSpec(kind="femnist", n_clients=4, model="mlp", scale="tiny", seed=3)
        script = (
            "from repro.experiments import TaskSpec;"
            "print(TaskSpec(kind='femnist', n_clients=4, model='mlp',"
            " scale='tiny', seed=3).fingerprint())"
        )
        src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        env["PYTHONHASHSEED"] = "12345"  # force a different hash() salt
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == spec.fingerprint()
