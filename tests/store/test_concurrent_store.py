"""Store behaviour under many concurrent writers (and gc racing them).

Satellites of the fleet PR: the SQLite store's explicit ``busy_timeout`` +
bounded busy retry must survive many writer *processes* hammering one file,
and ``store gc`` must be safe to run while depositors are live — an entry
deposited after gc started is never deleted (SQLite: predicate-carrying
DELETEs; JSONL: per-shard exclusive flock against the appenders' shared
locks).
"""

import subprocess
import sys
import threading

import pytest

from repro.store import open_store, utility_key
from repro.store.sqlite import BUSY_RETRIES, is_busy_error, run_with_busy_retry

NAMESPACE = "concurrent"

WRITER_SCRIPT = """
import sys
from repro.store import open_store, utility_key

path, worker, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
with open_store(path) as store:
    for i in range(count):
        coalition = frozenset({int(worker), i % 7, (i * 3) % 11})
        store.put(f"concurrent:w{worker}-{i}", float(i) + 0.5)
        store.get(f"concurrent:w{worker}-{i}")
"""


def run_writers(path, n_writers=4, count=40, timeout=180):
    processes = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT, str(path), str(i), str(count)],
            stderr=subprocess.PIPE,
            text=True,
        )
        for i in range(n_writers)
    ]
    for process in processes:
        _, err = process.communicate(timeout=timeout)
        assert process.returncode == 0, err
    return n_writers * count


class TestSqliteManyWriters:
    def test_many_writer_processes_lose_nothing(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        expected = run_writers(path, n_writers=4, count=40)
        with open_store(path) as store:
            assert len(store) == expected
            assert store.get("concurrent:w0-0") == 0.5
            assert store.get("concurrent:w3-39") == 39.5

    def test_gc_races_writer_processes_without_eating_fresh_rows(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", WRITER_SCRIPT, str(path), str(i), "40"],
                stderr=subprocess.PIPE,
                text=True,
            )
            for i in range(3)
        ]
        # gc repeatedly while the writers are live; keep_namespace matches
        # what they write, so nothing legitimate may ever be dropped.
        with open_store(path) as store:
            while any(p.poll() is None for p in processes):
                result = store.gc(keep_namespace=NAMESPACE)
                assert result.dropped_corrupt == 0
                assert result.dropped_namespaces == 0
        for process in processes:
            _, err = process.communicate(timeout=180)
            assert process.returncode == 0, err
        with open_store(path) as store:
            assert len(store) == 3 * 40

    def test_busy_retry_gives_up_after_bounded_attempts(self):
        import sqlite3

        attempts = []

        def always_busy():
            attempts.append(1)
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            run_with_busy_retry(always_busy, retries=3, backoff=0.001)
        assert len(attempts) == 3
        assert BUSY_RETRIES >= 3

    def test_non_busy_errors_are_not_retried(self):
        import sqlite3

        attempts = []

        def broken():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: utilities")

        with pytest.raises(sqlite3.OperationalError):
            run_with_busy_retry(broken, retries=5, backoff=0.001)
        assert len(attempts) == 1
        assert not is_busy_error(sqlite3.OperationalError("no such table"))
        assert is_busy_error(sqlite3.OperationalError("database is locked"))


class TestJsonlGcVsWriters:
    def test_appends_racing_gc_are_never_lost(self, tmp_path):
        directory = str(tmp_path / "store-jsonl")
        stop = threading.Event()
        errors = []

        def gc_loop():
            with open_store(directory, backend="jsonl") as collector:
                while not stop.is_set():
                    try:
                        collector.gc(keep_namespace=NAMESPACE)
                    except Exception as error:  # noqa: BLE001 - test must surface it
                        errors.append(error)
                        return

        with open_store(directory, backend="jsonl") as store:
            store.put(utility_key(NAMESPACE, {0}), 1.0)  # shard files exist
            collector = threading.Thread(target=gc_loop)
            collector.start()
            keys = []
            for i in range(300):
                key = utility_key(NAMESPACE, {i % 9, i % 13, 17 + (i % 5)})
                keys.append((key, float(i)))
                store.put(key, float(i))
            stop.set()
            collector.join(timeout=60)
        assert errors == []

        # Re-open cold: every surviving key must carry its *latest* value
        # (puts overwrite, so only last-write-per-key is observable).
        latest = {}
        for key, value in keys:
            latest[key] = value
        with open_store(directory, backend="jsonl") as store:
            for key, value in latest.items():
                assert store.get(key) == value, key

    def test_gc_compacts_duplicates_without_losing_latest(self, tmp_path):
        directory = str(tmp_path / "store-jsonl")
        with open_store(directory, backend="jsonl") as store:
            key = utility_key(NAMESPACE, {1, 2})
            for value in (1.0, 2.0, 3.0):
                store.put(key, value)
            result = store.gc()
            assert result.dropped_duplicates >= 1
            assert store.get(key) == 3.0
