"""Tests for the persistent tier beneath UtilityCache / BatchUtilityOracle."""

import pytest

from repro.parallel import BatchUtilityOracle
from repro.store import MemoryUtilityStore, SqliteUtilityStore, utility_key
from repro.utils.cache import UtilityCache

from tests.helpers import monotone_game


class CountingGame:
    """Tabular game that records every evaluator call."""

    def __init__(self, n_clients=4, seed=0):
        self._game = monotone_game(n_clients, seed=seed)
        self.n_clients = n_clients
        self.calls = []

    def __call__(self, coalition):
        self.calls.append(frozenset(coalition))
        return self._game(coalition)


class TestCacheWriteThrough:
    def test_evaluation_writes_through_to_store(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        cache = UtilityCache(evaluator=game, persistent=store, namespace="t")
        value = cache.utility([0, 1])
        assert store.get(utility_key("t", [0, 1])) == value
        assert cache.stats.misses == 1
        assert cache.stats.store_hits == 0

    def test_store_hit_skips_evaluator_and_is_bitwise_identical(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        first = UtilityCache(evaluator=game, persistent=store, namespace="t")
        fresh_value = first.utility([0, 2])

        exploding = UtilityCache(
            evaluator=lambda s: 1 / 0, persistent=store, namespace="t"
        )
        assert exploding.utility([0, 2]) == fresh_value  # bitwise
        assert exploding.stats.store_hits == 1
        assert exploding.stats.misses == 0
        assert exploding.evaluations == 0

    def test_namespaces_do_not_alias(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        a = UtilityCache(evaluator=game, persistent=store, namespace="taskA")
        b = UtilityCache(evaluator=game, persistent=store, namespace="taskB")
        a.utility([0, 1])
        b.utility([0, 1])
        assert len(game.calls) == 2  # same coalition, different namespace

    def test_hit_accounting_parity_with_memory_only_cache(self):
        """Same access sequence => identical hits+misses split between tiers,
        and identical values, whether or not a store is attached."""
        sequence = [[0], [0, 1], [0], [1, 2], [0, 1], [2], [0]]
        plain = UtilityCache(evaluator=CountingGame())
        tiered = UtilityCache(
            evaluator=CountingGame(), persistent=MemoryUtilityStore(), namespace="t"
        )
        plain_values = [plain.utility(c) for c in sequence]
        tiered_values = [tiered.utility(c) for c in sequence]
        assert plain_values == tiered_values
        assert plain.stats.lookups == tiered.stats.lookups
        assert plain.stats.hits == tiered.stats.hits
        # a cold store adds nothing: misses match exactly
        assert plain.stats.misses == tiered.stats.misses
        assert tiered.stats.store_hits == 0

    def test_clear_preserves_store_so_reload_is_free(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        cache = UtilityCache(evaluator=game, persistent=store, namespace="t")
        cache.utility([0, 1])
        cache.clear()
        cache.utility([0, 1])
        assert len(game.calls) == 1  # reload came from the store
        assert cache.stats.store_hits == 1

    def test_eviction_reload_comes_from_store_not_retraining(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        cache = UtilityCache(
            evaluator=game, max_size=1, persistent=store, namespace="t"
        )
        cache.utility([0])
        cache.utility([1])  # evicts {0} from memory; store still holds it
        cache.utility([0])
        assert len(game.calls) == 2
        assert cache.stats.store_hits == 1

    def test_lookup_and_store_consult_persistent_tier(self):
        """The process-backend read/write halves must see the disk tier."""
        store = MemoryUtilityStore()
        cache = UtilityCache(evaluator=lambda s: 1 / 0, persistent=store, namespace="t")
        assert cache.lookup([0, 1]) is None
        store.put(utility_key("t", [0, 1]), 0.625)
        assert cache.lookup([0, 1]) == 0.625
        assert cache.stats.store_hits == 1
        cache.store([2, 3], 0.375)
        assert store.get(utility_key("t", [2, 3])) == 0.375


class TestOracleStorePlumbing:
    def test_reset_cache_then_rerun_trains_nothing(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        oracle = BatchUtilityOracle(game, store=store, store_namespace="t")
        oracle.evaluate_batch([[0], [0, 1], [1, 2]])
        trained = len(game.calls)
        oracle.reset_cache()
        repeat = oracle.evaluate_batch([[0], [0, 1], [1, 2]])
        assert len(game.calls) == trained  # zero new trainings
        assert oracle.evaluations == 0
        assert oracle.store_hits == 3
        assert list(repeat) == [frozenset({0}), frozenset({0, 1}), frozenset({1, 2})]

    def test_process_backend_path_uses_store(self):
        """The lookup/store partition path (shares_memory=False) must serve
        hits from the persistent tier as well."""
        store = MemoryUtilityStore()
        game = CountingGame()
        warm = BatchUtilityOracle(game, store=store, store_namespace="t")
        warm.evaluate_batch([[0, 1], [1, 2]])

        from repro.parallel import CoalitionExecutor

        class NoSharedMemoryExecutor(CoalitionExecutor):
            shares_memory = False
            n_workers = 1

            def map_utilities(self, evaluator, coalitions):
                return [float(evaluator(c)) for c in coalitions]

        cold = BatchUtilityOracle(
            lambda s: 1 / 0,
            n_clients=4,
            executor=NoSharedMemoryExecutor(),
            store=store,
            store_namespace="t",
        )
        results = cold.evaluate_batch([[0, 1], [1, 2]])
        assert len(results) == 2
        assert cold.evaluations == 0

    def test_owned_path_store_closed_on_close(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        oracle = BatchUtilityOracle(
            monotone_game(4), n_clients=4, store=path, store_namespace="t"
        )
        oracle.utility([0, 1])
        handle = oracle.store
        assert isinstance(handle, SqliteUtilityStore)
        oracle.close()
        assert handle.closed
        assert oracle.store is None

    def test_instance_store_left_open_on_close(self):
        store = MemoryUtilityStore()
        oracle = BatchUtilityOracle(
            monotone_game(4), n_clients=4, store=store, store_namespace="t"
        )
        oracle.close()
        assert not store.closed

    def test_context_manager(self):
        with BatchUtilityOracle(monotone_game(4), n_clients=4) as oracle:
            assert oracle.utility([0, 1]) > 0

    def test_attach_store_after_construction(self):
        store = MemoryUtilityStore()
        game = CountingGame()
        oracle = BatchUtilityOracle(game)
        oracle.attach_store(store, "late")
        oracle.utility([0, 1])
        assert store.get(utility_key("late", [0, 1])) is not None


class TestCrossProcessSharing:
    def test_second_process_rereads_store(self, tmp_path):
        """Fingerprint keys + a disk store = zero trainings in a new process."""
        import os
        import subprocess
        import sys

        path = str(tmp_path / "shared.sqlite")
        store = SqliteUtilityStore(path)
        game = CountingGame()
        oracle = BatchUtilityOracle(game, store=store, store_namespace="task")
        first = oracle.evaluate_batch([[0], [0, 1]])
        oracle.close()
        store.close()

        script = (
            "import sys;"
            "from repro.parallel import BatchUtilityOracle;"
            f"o = BatchUtilityOracle(lambda s: 1/0, n_clients=4, store={path!r},"
            " store_namespace='task');"
            "r = o.evaluate_batch([[0], [0, 1]]);"
            "assert o.evaluations == 0;"
            "print(repr(sorted(r.values())))"
        )
        src_dir = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env = dict(os.environ, PYTHONPATH=src_dir)
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == repr(sorted(first.values()))  # bitwise across processes


class TestStoreFailureIsolation:
    def test_failing_store_put_releases_in_flight_waiters(self):
        """A store write failure must not leave the coalition's in-flight
        entry behind — later lookups would deadlock on the unset event."""

        class ExplodingStore(MemoryUtilityStore):
            def put(self, key, value):
                raise OSError("disk full")

        game = CountingGame()
        cache = UtilityCache(evaluator=game, persistent=ExplodingStore(), namespace="t")
        with pytest.raises(OSError):
            cache.utility([0, 1])
        assert cache._in_flight == {}  # released, not leaked
        # The same coalition stays evaluable (no deadlock, no stale event).
        cache.attach_store(MemoryUtilityStore())
        assert cache.utility([0, 1]) == game._game([0, 1])

    def test_non_finite_values_are_not_persisted(self):
        """NaN utilities (degenerate training) must neither crash the store
        nor poison it; they simply are not shared."""
        import math

        for store in (
            MemoryUtilityStore(),
            SqliteUtilityStore(":memory:"),
        ):
            cache = UtilityCache(
                evaluator=lambda s: float("nan"), persistent=store, namespace="t"
            )
            assert math.isnan(cache.utility([0]))  # evaluation still works
            assert store.get(utility_key("t", [0])) is None  # nothing persisted
            store.close()
