"""ValuationService end-to-end: the ISSUE's four invariants, in-process.

* a preempted-and-resumed job is bitwise-identical to an uninterrupted run;
* a cancelled job releases its queue slot;
* two tenants with identical tasks never share store entries;
* concurrent submits never duplicate trainings (the ledger invariant).

Timing-sensitive scenarios use the n=8 synthetic task (~2.5s of chunks),
which leaves a wide window to preempt/cancel/stop mid-run.
"""

import json
import os

import pytest

from repro.service.jobs import JobStore
from repro.service.models import JobSpec
from repro.service.runner import checkpoint_path
from repro.service.scheduler import ValuationService
from repro.service.stream import read_events
from tests.service.helpers import direct_values, make_spec, wait_terminal, wait_until

SLOW = 8  # n_clients of the long-running job (≈2.5s, 18 chunks)
QUICK = 5  # n_clients of the fast jobs (≈0.2s)


def start_service(tmp_path, workers=1):
    return ValuationService(str(tmp_path / "state"), workers=workers).start()


def wait_running(service, job_id, min_chunks=1):
    """Block until the job is running and has streamed *min_chunks* snapshots
    (i.e. it is genuinely mid-valuation, not just claimed)."""

    def mid_run():
        record = service.get(job_id)
        if record is None or record.status != "running":
            return False
        snapshots = [
            e
            for e in read_events(service.event_log_path(job_id))
            if e["event"] == "snapshot"
        ]
        return len(snapshots) >= min_chunks

    wait_until(mid_run, timeout=30.0, message=f"{job_id} to be mid-run")


class TestHappyPath:
    def test_submitted_job_completes_bitwise_identical_to_direct_run(self, tmp_path):
        service = start_service(tmp_path)
        try:
            spec = make_spec(n_clients=QUICK)
            record = service.submit(spec)
            final = wait_terminal(service, record.job_id)
            assert final.status == "done"
            assert final.result["result"]["values"] == direct_values(
                spec.task, spec.algorithm
            )
            assert final.fl_trainings > 0
            assert service.jobs.training_counts()[0] == final.fl_trainings
            events = read_events(service.event_log_path(record.job_id))
            assert [e["event"] for e in events][0] == "queued"
            assert events[-1]["event"] == "result"
        finally:
            service.stop()

    def test_a_failing_job_fails_alone(self, tmp_path):
        service = start_service(tmp_path)
        try:
            # A queue_dir that is a regular file makes the fleet backend
            # blow up deterministically when the job starts.
            not_a_dir = tmp_path / "not-a-dir"
            not_a_dir.write_text("")
            bad = JobSpec(
                task=make_spec(n_clients=4).task,
                algorithm="MC-Shapley",
                backend="fleet",
                queue_dir=str(not_a_dir),
                spawn_workers=0,
                lease_seconds=0.2,
            )
            record = service.submit(bad)
            good = service.submit(make_spec(n_clients=4, seed=1))
            final_good = wait_terminal(service, good.job_id)
            final_bad = wait_terminal(service, record.job_id, timeout=90.0)
            assert final_good.status == "done"
            assert final_bad.status == "failed"
            assert final_bad.error
        finally:
            service.stop()


class TestPreemption:
    def test_priority_submit_preempts_and_both_finish_bitwise_identical(
        self, tmp_path
    ):
        service = start_service(tmp_path, workers=1)
        try:
            slow_spec = make_spec(n_clients=SLOW)
            slow = service.submit(slow_spec)
            wait_running(service, slow.job_id)

            urgent_spec = make_spec(n_clients=QUICK, seed=1, priority=10)
            urgent = service.submit(urgent_spec)

            final_urgent = wait_terminal(service, urgent.job_id)
            final_slow = wait_terminal(service, slow.job_id, timeout=90.0)

            assert final_urgent.status == "done"
            assert final_slow.status == "done"
            assert final_slow.preemptions >= 1
            assert final_slow.attempts >= 2
            # The urgent job ran while the slow one waited: it finished first.
            assert final_urgent.finished_at <= final_slow.finished_at
            # Bitwise identity across the preemption.
            assert final_slow.result["result"]["values"] == direct_values(
                slow_spec.task, slow_spec.algorithm
            )
            assert final_urgent.result["result"]["values"] == direct_values(
                urgent_spec.task, urgent_spec.algorithm
            )
            total, distinct = service.jobs.training_counts()
            assert total == distinct
        finally:
            service.stop()

    def test_equal_priority_never_preempts(self, tmp_path):
        service = start_service(tmp_path, workers=1)
        try:
            slow = service.submit(make_spec(n_clients=SLOW))
            wait_running(service, slow.job_id)
            service.submit(make_spec(n_clients=QUICK, seed=1))
            final_slow = wait_terminal(service, slow.job_id, timeout=90.0)
            assert final_slow.preemptions == 0
            assert final_slow.attempts == 1
        finally:
            service.stop()


class TestCancellation:
    def test_cancelled_queued_job_releases_its_slot(self, tmp_path):
        service = start_service(tmp_path, workers=1)
        try:
            slow = service.submit(make_spec(n_clients=SLOW))
            wait_running(service, slow.job_id)
            victim = service.submit(make_spec(n_clients=QUICK, seed=1))
            survivor = service.submit(make_spec(n_clients=QUICK, seed=2))
            assert service.cancel(victim.job_id) == "cancelled"
            # The job behind the cancelled one still gets the worker.
            final_survivor = wait_terminal(service, survivor.job_id, timeout=90.0)
            assert final_survivor.status == "done"
            final_victim = service.get(victim.job_id)
            assert final_victim.status == "cancelled"
            assert final_victim.attempts == 0
        finally:
            service.stop()

    def test_cancelling_a_running_job_takes_effect_at_the_next_chunk(self, tmp_path):
        service = start_service(tmp_path, workers=1)
        try:
            slow = service.submit(make_spec(n_clients=SLOW))
            wait_running(service, slow.job_id)
            assert service.cancel(slow.job_id) == "cancelling"
            final = wait_terminal(service, slow.job_id)
            assert final.status == "cancelled"
            # A cancelled job keeps no checkpoint around.
            assert not os.path.exists(
                checkpoint_path(service.state_dir, slow.job_id)
            )
        finally:
            service.stop()


class TestTenancy:
    def test_two_tenants_same_task_never_share_store_entries(self, tmp_path):
        service = start_service(tmp_path, workers=2)
        try:
            spec = make_spec(n_clients=QUICK)
            alice = service.submit(JobSpec.from_dict({**spec.to_dict(), "tenant": "alice"}))
            bob = service.submit(JobSpec.from_dict({**spec.to_dict(), "tenant": "bob"}))
            final_alice = wait_terminal(service, alice.job_id)
            final_bob = wait_terminal(service, bob.job_id)
            assert final_alice.namespace != final_bob.namespace
            # No sharing: each tenant paid for every training itself.
            assert final_alice.fl_trainings == final_bob.fl_trainings > 0
            assert final_alice.store_hits == final_bob.store_hits == 0
            # And the ledger stays duplicate-free: the keys are namespaced.
            total, distinct = service.jobs.training_counts()
            assert total == distinct == final_alice.fl_trainings * 2
            # Same task, same seed: the values agree even though the store
            # entries do not.
            assert (
                final_alice.result["result"]["values"]
                == final_bob.result["result"]["values"]
            )
        finally:
            service.stop()

    def test_concurrent_identical_submits_never_duplicate_trainings(self, tmp_path):
        service = start_service(tmp_path, workers=2)
        try:
            spec = make_spec(n_clients=QUICK)
            first = service.submit(spec)
            second = service.submit(spec)
            final_first = wait_terminal(service, first.job_id)
            final_second = wait_terminal(service, second.job_id)
            assert final_first.status == final_second.status == "done"
            # Store affinity serialised them: the duplicate became a warm
            # re-run that paid for nothing.
            assert final_first.fl_trainings > 0
            assert final_second.fl_trainings == 0
            assert final_second.store_hits > 0
            total, distinct = service.jobs.training_counts()
            assert total == distinct == final_first.fl_trainings
            assert (
                final_first.result["result"]["values"]
                == final_second.result["result"]["values"]
            )
        finally:
            service.stop()


class TestRestart:
    def test_graceful_stop_checkpoints_and_a_restart_finishes_identically(
        self, tmp_path
    ):
        spec = make_spec(n_clients=SLOW)
        service = start_service(tmp_path, workers=1)
        try:
            record = service.submit(spec)
            wait_running(service, record.job_id, min_chunks=2)
        finally:
            service.stop()  # graceful: checkpoint + requeue

        parked = JobStore(str(tmp_path / "state"))
        try:
            row = parked.get(record.job_id)
            assert row.status == "queued"
            assert row.preemptions >= 1
        finally:
            parked.close()
        assert os.path.exists(
            checkpoint_path(str(tmp_path / "state"), record.job_id)
        )

        restarted = start_service(tmp_path, workers=1)
        try:
            final = wait_terminal(restarted, record.job_id, timeout=90.0)
            assert final.status == "done"
            assert final.result["result"]["values"] == direct_values(
                spec.task, spec.algorithm
            )
            total, distinct = restarted.jobs.training_counts()
            assert total == distinct
        finally:
            restarted.stop()

    def test_crash_recovery_requeues_and_finishes_identically(self, tmp_path):
        # Simulate a SIGKILL'd server: a row left in 'running' with no
        # process behind it (the smoke script does this with a real kill -9).
        spec = make_spec(n_clients=QUICK)
        state_dir = str(tmp_path / "state")
        with JobStore(state_dir) as orphaned:
            record = orphaned.submit(spec)
            orphaned.claim("dead-worker")

        service = ValuationService(state_dir, workers=1).start()
        try:
            assert service.recovered_jobs == [record.job_id]
            final = wait_terminal(service, record.job_id)
            assert final.status == "done"
            assert final.attempts == 2  # the dead claim plus the real one
            assert final.result["result"]["values"] == direct_values(
                spec.task, spec.algorithm
            )
            events = read_events(service.event_log_path(record.job_id))
            assert any(e["event"] == "recovered" for e in events)
        finally:
            service.stop()


class TestObservability:
    def test_metrics_text_reports_lifecycle_counters(self, tmp_path):
        service = start_service(tmp_path)
        try:
            record = service.submit(make_spec(n_clients=4))
            wait_terminal(service, record.job_id)
            text = service.metrics_text()
            assert "repro_service_jobs_submitted 1" in text
            assert "repro_service_jobs_completed 1" in text
            assert "# TYPE repro_service_first_snapshot_seconds histogram" in text
            assert "repro_service_queue_depth 0" in text
        finally:
            service.stop()

    def test_event_log_is_valid_jsonl_with_sorted_keys(self, tmp_path):
        service = start_service(tmp_path)
        try:
            record = service.submit(make_spec(n_clients=4))
            wait_terminal(service, record.job_id)
            path = service.event_log_path(record.job_id)
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    payload = json.loads(line)
                    assert line == json.dumps(payload, sort_keys=True) + "\n"
        finally:
            service.stop()
