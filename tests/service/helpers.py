"""Shared fixtures for the valuation-service suite.

Synthetic tasks keep these tests dataset-free; `n_clients` tunes how long a
job runs (n=4 ≈ 0.1s, n=5 ≈ 0.2s, n=8 ≈ 2.5s — the slow one leaves a wide
window to preempt/cancel/kill mid-run).
"""

import time

import pytest

from repro.experiments.pipeline import build_task_algorithm
from repro.experiments.specs import TaskSpec
from repro.service.models import JobSpec


def make_task(n_clients=5, seed=0):
    return {
        "kind": "synthetic",
        "setup": "same-size-same-distribution",
        "n_clients": n_clients,
        "seed": seed,
    }


def make_spec(n_clients=5, seed=0, **overrides):
    fields = {"task": make_task(n_clients, seed), "algorithm": "MC-Shapley"}
    fields.update(overrides)
    return JobSpec(**fields)


def direct_values(task, algorithm_name):
    """The comparator: what ``repro run`` computes for the same (task, algo).

    No store, no service — the raw estimator at the task's seed.  Service
    jobs must match this bitwise across preemptions, restarts and tenants.
    """
    spec = TaskSpec.from_dict(task)
    utility = spec.build(None)
    try:
        algorithm = build_task_algorithm(spec, algorithm_name, utility.n_clients)
        result = algorithm.run(utility, utility.n_clients)
        return result.to_dict()["values"]
    finally:
        utility.close()


def wait_until(predicate, timeout=30.0, poll=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


def wait_terminal(service, job_id, timeout=60.0):
    wait_until(
        lambda: service.get(job_id).terminal,
        timeout=timeout,
        message=f"{job_id} to reach a terminal status",
    )
    return service.get(job_id)
