"""JobSpec/JobRecord wire schema: validation, round-trips, namespacing."""

import pytest

from repro.service.models import (
    DEFAULT_TENANT,
    JOB_STATUSES,
    JobSpec,
    TERMINAL_STATUSES,
    tenant_namespace,
)
from tests.service.helpers import make_spec, make_task


class TestJobSpecValidation:
    def test_valid_spec_round_trips_through_dict(self):
        spec = make_spec(tenant="alice", priority=3, stop_on="ci:0.05", n_workers=2, backend="thread")
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_spec(algorithm="Exact-Shapley-Typo")

    def test_malformed_task_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            JobSpec(task={"kind": "no-such-kind"}, algorithm="MC-Shapley")

    def test_empty_tenant_rejected(self):
        with pytest.raises(ValueError, match="tenant"):
            make_spec(tenant="")

    def test_non_integer_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            make_spec(priority=1.5)
        with pytest.raises(ValueError, match="priority"):
            make_spec(priority=True)

    def test_malformed_stop_on_rejected(self):
        with pytest.raises(ValueError):
            make_spec(stop_on="whenever")

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_spec(checkpoint_every=-1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_spec(backend="gpu-cluster")

    def test_fleet_backend_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue"):
            make_spec(backend="fleet")

    def test_from_dict_rejects_unknown_fields(self):
        payload = {"task": make_task(), "algorithm": "MC-Shapley", "algorithms": "x"}
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_dict(payload)

    def test_from_dict_requires_task_and_algorithm(self):
        with pytest.raises(ValueError, match="requires fields"):
            JobSpec.from_dict({"task": make_task()})
        with pytest.raises(ValueError, match="requires fields"):
            JobSpec.from_dict({"algorithm": "MC-Shapley"})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_dict(["task"])


class TestTenantNamespace:
    def test_default_tenant_keeps_bare_task_fingerprint(self):
        spec = make_spec()
        assert spec.tenant == DEFAULT_TENANT
        assert spec.namespace() == spec.task_fingerprint()

    def test_other_tenants_never_alias_the_bare_fingerprint(self):
        fp = make_spec().task_fingerprint()
        assert tenant_namespace("alice", fp) != fp
        assert tenant_namespace("bob", fp) != fp

    def test_distinct_tenants_get_distinct_namespaces(self):
        fp = make_spec().task_fingerprint()
        assert tenant_namespace("alice", fp) != tenant_namespace("bob", fp)

    def test_namespace_is_key_safe_for_any_tenant_string(self):
        fp = make_spec().task_fingerprint()
        namespace = tenant_namespace("team:eu/résearch", fp)
        assert ":" not in namespace and "/" not in namespace

    def test_same_tenant_same_task_is_stable(self):
        fp = make_spec().task_fingerprint()
        assert tenant_namespace("alice", fp) == tenant_namespace("alice", fp)


class TestLifecycleConstants:
    def test_terminal_statuses_are_a_subset_of_all_statuses(self):
        assert set(TERMINAL_STATUSES) < set(JOB_STATUSES)
        assert "queued" in JOB_STATUSES and "running" in JOB_STATUSES

    def test_record_to_dict_carries_scheduling_coordinates(self):
        spec = make_spec(tenant="alice", priority=7)
        from repro.service.models import JobRecord

        record = JobRecord(job_id="job-000001", spec=spec)
        payload = record.to_dict()
        assert payload["tenant"] == "alice"
        assert payload["priority"] == 7
        assert payload["algorithm"] == "MC-Shapley"
        assert not record.terminal
