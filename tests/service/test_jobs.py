"""JobStore protocol: claim ordering, cancel, recovery, the trainings ledger."""

import pytest

from repro.service.jobs import JobStore
from tests.service.helpers import make_spec


@pytest.fixture
def jobs(tmp_path):
    with JobStore(str(tmp_path)) as store:
        yield store


class TestSubmit:
    def test_ids_derive_from_the_row_sequence(self, jobs):
        first = jobs.submit(make_spec(seed=0))
        second = jobs.submit(make_spec(seed=1))
        assert first.job_id == "job-000001"
        assert second.job_id == "job-000002"
        assert jobs.get(first.job_id).status == "queued"

    def test_counts_group_by_status(self, jobs):
        jobs.submit(make_spec(seed=0))
        jobs.submit(make_spec(seed=1))
        assert jobs.counts() == {"queued": 2}

    def test_list_filters_by_tenant_and_status(self, jobs):
        jobs.submit(make_spec(seed=0, tenant="alice"))
        jobs.submit(make_spec(seed=1, tenant="bob"))
        assert [r.spec.tenant for r in jobs.list_jobs(tenant="alice")] == ["alice"]
        assert len(jobs.list_jobs(status="queued")) == 2
        assert jobs.list_jobs(status="done") == []


class TestClaimOrdering:
    def test_fifo_within_equal_priority(self, jobs):
        first = jobs.submit(make_spec(seed=0))
        jobs.submit(make_spec(seed=1))
        record, wait = jobs.claim("w0")
        assert record.job_id == first.job_id
        assert record.status == "running"
        assert record.attempts == 1
        assert wait >= 0.0

    def test_priority_beats_submission_order(self, jobs):
        jobs.submit(make_spec(seed=0, priority=0))
        urgent = jobs.submit(make_spec(seed=1, priority=5))
        record, _ = jobs.claim("w0")
        assert record.job_id == urgent.job_id

    def test_tenant_fairness_among_equal_priorities(self, jobs):
        # alice already has a running job; her next job queued first, but
        # bob (zero running) must win the tie.
        jobs.submit(make_spec(seed=0, tenant="alice"))
        jobs.claim("w0")
        jobs.submit(make_spec(seed=1, tenant="alice"))
        bobs = jobs.submit(make_spec(seed=2, tenant="bob"))
        record, _ = jobs.claim("w1")
        assert record.job_id == bobs.job_id

    def test_store_affinity_skips_a_running_namespace(self, jobs):
        # Two identical submits: while the first runs, the duplicate must
        # stay queued (claiming it would train the same coalitions twice).
        jobs.submit(make_spec(seed=0))
        duplicate = jobs.submit(make_spec(seed=0))
        other = jobs.submit(make_spec(seed=1))
        running, _ = jobs.claim("w0")
        next_record, _ = jobs.claim("w1")
        assert next_record.job_id == other.job_id
        assert jobs.claim("w2") is None
        assert jobs.get(duplicate.job_id).status == "queued"
        # Once the first finishes, the duplicate becomes claimable.
        jobs.finish(running.job_id, "w0", {"ok": True})
        record, _ = jobs.claim("w2")
        assert record.job_id == duplicate.job_id

    def test_claim_returns_none_on_an_empty_queue(self, jobs):
        assert jobs.claim("w0") is None


class TestTransitions:
    def test_finish_records_result_and_accounting(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        assert jobs.finish(submitted.job_id, "w0", {"values": [1.0]}, fl_trainings=3, store_hits=2)
        record = jobs.get(submitted.job_id)
        assert record.status == "done"
        assert record.result == {"values": [1.0]}
        assert record.fl_trainings == 3
        assert record.store_hits == 2

    def test_finish_by_the_wrong_worker_is_a_noop(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        assert not jobs.finish(submitted.job_id, "w1", {})
        assert jobs.get(submitted.job_id).status == "running"

    def test_fail_records_the_error(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        assert jobs.fail(submitted.job_id, "w0", "ZeroDivisionError: boom")
        record = jobs.get(submitted.job_id)
        assert record.status == "failed"
        assert "boom" in record.error

    def test_requeue_counts_the_preemption_and_accumulates_cost(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        assert jobs.requeue(submitted.job_id, "w0", preempted=True, fl_trainings=7)
        record = jobs.get(submitted.job_id)
        assert record.status == "queued"
        assert record.preemptions == 1
        assert record.fl_trainings == 7
        assert record.worker is None
        # The next attempt increments the counter again.
        record, _ = jobs.claim("w1")
        assert record.attempts == 2


class TestCancel:
    def test_cancel_queued_frees_the_slot_immediately(self, jobs):
        victim = jobs.submit(make_spec(seed=0))
        survivor = jobs.submit(make_spec(seed=1))
        assert jobs.cancel(victim.job_id) == "cancelled"
        record, _ = jobs.claim("w0")
        assert record.job_id == survivor.job_id
        assert jobs.get(victim.job_id).status == "cancelled"

    def test_cancel_running_sets_the_flag_for_the_runner(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        assert jobs.cancel(submitted.job_id) == "cancelling"
        assert jobs.control_flags(submitted.job_id) == (True, False)
        assert jobs.get(submitted.job_id).status == "running"
        assert jobs.mark_cancelled(submitted.job_id, "w0")
        assert jobs.get(submitted.job_id).status == "cancelled"

    def test_cancel_terminal_and_unknown_jobs(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        jobs.finish(submitted.job_id, "w0", {})
        assert jobs.cancel(submitted.job_id) == "done"
        assert jobs.cancel("job-999999") is None


class TestPreemptFlag:
    def test_request_preempt_only_hits_running_jobs(self, jobs):
        queued = jobs.submit(make_spec(seed=0))
        assert not jobs.request_preempt(queued.job_id)
        jobs.claim("w0")
        assert jobs.request_preempt(queued.job_id)
        assert jobs.control_flags(queued.job_id) == (False, True)

    def test_a_fresh_claim_clears_the_preempt_flag(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        jobs.request_preempt(submitted.job_id)
        jobs.requeue(submitted.job_id, "w0", preempted=True)
        jobs.claim("w1")
        assert jobs.control_flags(submitted.job_id) == (False, False)


class TestRecovery:
    def test_recover_requeues_what_a_dead_server_left_running(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        requeued = jobs.recover()
        assert requeued == [submitted.job_id]
        record = jobs.get(submitted.job_id)
        assert record.status == "queued"
        assert record.worker is None

    def test_recover_honours_a_pending_cancel_instead_of_requeueing(self, jobs):
        submitted = jobs.submit(make_spec(seed=0))
        jobs.claim("w0")
        jobs.cancel(submitted.job_id)
        assert jobs.recover() == []
        assert jobs.get(submitted.job_id).status == "cancelled"

    def test_recover_survives_a_literal_reopen(self, tmp_path):
        with JobStore(str(tmp_path)) as first:
            submitted = first.submit(make_spec(seed=0))
            first.claim("w0")
        # A second handle on the same file sees the orphaned running row.
        with JobStore(str(tmp_path)) as second:
            assert second.recover() == [submitted.job_id]


class TestTrainingsLedger:
    def test_distinct_keys_keep_the_invariant(self, jobs):
        jobs.record_training("ns1:c1", "job-000001")
        jobs.record_training("ns1:c2", "job-000001")
        assert jobs.training_counts() == (2, 2)

    def test_duplicated_trainings_are_visible_not_papered_over(self, jobs):
        jobs.record_training("ns1:c1", "job-000001")
        jobs.record_training("ns1:c1", "job-000002")
        total, distinct = jobs.training_counts()
        assert (total, distinct) == (2, 1)
        assert total != distinct
