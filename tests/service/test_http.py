"""The HTTP surface, end to end: real sockets on an ephemeral port."""

import json
import threading
import urllib.request

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import ValuationService
from repro.service.server import serve
from tests.service.helpers import direct_values, make_spec, make_task


@pytest.fixture
def service_client(tmp_path):
    service = ValuationService(str(tmp_path / "state"), workers=2).start()
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield service, ServiceClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        service.stop()


class TestJobEndpoints:
    def test_submit_wait_fetch_round_trip(self, service_client):
        _service, client = service_client
        spec = make_spec(n_clients=5)
        created = client.submit(spec.to_dict())
        assert created["status"] == "queued"
        assert created["job_id"].startswith("job-")
        final = client.wait(created["job_id"], timeout=60.0)
        assert final["status"] == "done"
        assert final["result"]["result"]["values"] == direct_values(
            spec.task, spec.algorithm
        )

    def test_list_filters_by_tenant_and_status(self, service_client):
        _service, client = service_client
        a = client.submit({**make_spec(n_clients=4).to_dict(), "tenant": "alice"})
        client.submit({**make_spec(n_clients=4, seed=1).to_dict(), "tenant": "bob"})
        client.wait(a["job_id"], timeout=60.0)
        alice_jobs = client.jobs(tenant="alice")
        assert [j["tenant"] for j in alice_jobs] == ["alice"]
        assert client.jobs(status="failed") == []
        # The list view omits result payloads; the detail view carries them.
        done = client.wait(a["job_id"], timeout=60.0)
        listed = [j for j in client.jobs(tenant="alice") if j["job_id"] == a["job_id"]]
        assert "result" not in listed[0]
        assert "result" in done

    def test_malformed_spec_is_a_400_with_the_validation_message(
        self, service_client
    ):
        _service, client = service_client
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"task": make_task(), "algorithm": "Nope-Shapley"})
        assert excinfo.value.status == 400
        assert "unknown algorithm" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"task": make_task(), "algorithm": "IPSS", "algoritm": "x"})
        assert excinfo.value.status == 400

    def test_unknown_job_is_a_404_everywhere(self, service_client):
        _service, client = service_client
        for method in (client.job, client.cancel):
            with pytest.raises(ServiceError) as excinfo:
                method("job-999999")
            assert excinfo.value.status == 404

    def test_cancel_over_http(self, service_client):
        service, client = service_client
        # Fill both workers so the victim stays queued.
        for seed in (1, 2):
            client.submit(make_spec(n_clients=8, seed=seed).to_dict())
        victim = client.submit(make_spec(n_clients=4, seed=3).to_dict())
        response = client.cancel(victim["job_id"])
        assert response["status"] in ("cancelled", "cancelling")
        final = client.wait(victim["job_id"], timeout=60.0)
        assert final["status"] == "cancelled"


class TestStreaming:
    def test_sse_replays_the_whole_event_log(self, service_client):
        _service, client = service_client
        spec = make_spec(n_clients=5)
        created = client.submit(spec.to_dict())
        events = list(client.stream(created["job_id"]))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "result"
        assert "snapshot" in kinds
        snapshots = [e for e in events if e["event"] == "snapshot"]
        assert all(e["job_id"] == created["job_id"] for e in snapshots)

    def test_sse_frames_are_well_formed(self, service_client):
        service, client = service_client
        created = client.submit(make_spec(n_clients=4).to_dict())
        client.wait(created["job_id"], timeout=60.0)
        with urllib.request.urlopen(
            f"{client.base_url}/v1/jobs/{created['job_id']}/stream", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            body = response.read().decode("utf-8")
        frames = [f for f in body.split("\n\n") if f]
        assert all(f.startswith("data: ") for f in frames)
        for frame in frames:
            json.loads(frame[len("data: ") :])


class TestOperationalEndpoints:
    def test_healthz_reports_queue_counts(self, service_client):
        _service, client = service_client
        health = client.health()
        assert health["status"] == "ok"
        assert isinstance(health["jobs"], dict)

    def test_metrics_is_prometheus_exposition_text(self, service_client):
        _service, client = service_client
        created = client.submit(make_spec(n_clients=4).to_dict())
        client.wait(created["job_id"], timeout=60.0)
        text = client.metrics()
        assert "# TYPE repro_service_jobs_submitted counter" in text
        assert "repro_service_http_requests" in text

    def test_unknown_route_is_a_404(self, service_client):
        _service, client = service_client
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/nonsense")
        assert excinfo.value.status == 404
