"""run_job: the bitwise-identity invariant, deterministically.

These tests drive :func:`repro.service.runner.run_job` directly with stub
control callbacks, so preemption and cancellation land at an exact chunk —
no timing, no threads.  The service-level suite (test_service.py) covers the
same invariants through the real scheduler.
"""

import os

import pytest

from repro.service.jobs import JobStore
from repro.service.models import JobRecord
from repro.service.runner import checkpoint_path, result_path, run_job
from repro.store import open_store
from tests.service.helpers import direct_values, make_spec, make_task


class Ledger:
    """Collects (key, job_id) training records, like JobStore's ledger."""

    def __init__(self):
        self.rows = []

    def record(self, key, job_id):
        self.rows.append((key, job_id))

    def duplicates(self):
        keys = [key for key, _ in self.rows]
        return len(keys) - len(set(keys))


class ControlScript:
    """Returns (cancel, preempt) flags according to a per-chunk script."""

    def __init__(self, cancel_at=None, preempt_at=None):
        self.calls = 0
        self.cancel_at = cancel_at
        self.preempt_at = preempt_at

    def flags(self):
        self.calls += 1
        cancel = self.cancel_at is not None and self.calls >= self.cancel_at
        preempt = self.preempt_at is not None and self.calls >= self.preempt_at
        return cancel, preempt


def make_record(spec, job_id="job-000001"):
    return JobRecord(
        job_id=job_id,
        spec=spec,
        status="running",
        namespace=spec.namespace(),
        task_fingerprint=spec.task_fingerprint(),
        attempts=1,
    )


def quiet(message):
    """Log sink for run_job (tests keep worker chatter out of the output)."""


def execute(record, store, state_dir, ledger, control, events):
    return run_job(
        record,
        store,
        state_dir,
        ledger.record,
        control.flags,
        events.append,
        quiet,
    )


@pytest.fixture
def store(tmp_path):
    with open_store(str(tmp_path / "store.sqlite")) as handle:
        yield handle


class TestUninterruptedRun:
    def test_done_job_matches_the_direct_run_bitwise(self, tmp_path, store):
        spec = make_spec(n_clients=5)
        events = []
        outcome = execute(
            make_record(spec), store, str(tmp_path), Ledger(), ControlScript(), events
        )
        assert outcome.status == "done"
        assert outcome.result["result"]["values"] == direct_values(
            spec.task, spec.algorithm
        )
        assert events[-1]["event"] == "result"
        assert all(e["job_id"] == "job-000001" for e in events)

    def test_done_job_persists_its_result_and_drops_the_checkpoint(
        self, tmp_path, store
    ):
        spec = make_spec(n_clients=4)
        execute(make_record(spec), store, str(tmp_path), Ledger(), ControlScript(), [])
        assert os.path.exists(result_path(str(tmp_path), "job-000001"))
        assert not os.path.exists(checkpoint_path(str(tmp_path), "job-000001"))

    def test_every_training_lands_in_the_ledger_once(self, tmp_path, store):
        spec = make_spec(n_clients=5)
        ledger = Ledger()
        outcome = execute(
            make_record(spec), store, str(tmp_path), ledger, ControlScript(), []
        )
        assert len(ledger.rows) == outcome.fl_trainings > 0
        assert ledger.duplicates() == 0


class TestPreemption:
    @pytest.mark.parametrize("backend", [None, "thread", "process"])
    def test_preempted_then_resumed_is_bitwise_identical(
        self, tmp_path, store, backend
    ):
        spec = make_spec(
            n_clients=5,
            backend=backend,
            n_workers=1 if backend is None else 2,
        )
        record = make_record(spec)
        ledger = Ledger()
        events = []

        first = execute(
            record, store, str(tmp_path), ledger, ControlScript(preempt_at=3), events
        )
        assert first.status == "preempted"
        assert events[-1]["event"] == "preempted"
        # The interrupted chunk is on disk before JobPreempted propagates.
        assert os.path.exists(checkpoint_path(str(tmp_path), record.job_id))

        resumed_events = []
        second = execute(
            record, store, str(tmp_path), ledger, ControlScript(), resumed_events
        )
        assert second.status == "done"
        # The resumed attempt continued, not restarted: its first snapshot
        # picks up after the checkpointed chunk.
        snapshots = [e for e in resumed_events if e["event"] == "snapshot"]
        assert snapshots[0]["chunk"] > 1
        assert second.result["result"]["values"] == direct_values(
            spec.task, spec.algorithm
        )
        assert ledger.duplicates() == 0

    def test_off_cadence_preemption_still_checkpoints_the_current_chunk(
        self, tmp_path, store
    ):
        # checkpoint_every=4 but preemption lands at chunk 3: the runner must
        # persist chunk 3 anyway, then resume from it bitwise-identically.
        spec = make_spec(n_clients=5, checkpoint_every=4)
        record = make_record(spec)
        first = execute(
            record, store, str(tmp_path), Ledger(), ControlScript(preempt_at=3), []
        )
        assert first.status == "preempted"
        second = execute(record, store, str(tmp_path), Ledger(), ControlScript(), [])
        assert second.result["result"]["values"] == direct_values(
            spec.task, spec.algorithm
        )

    def test_checkpointing_disabled_means_no_graceful_preemption(
        self, tmp_path, store
    ):
        spec = make_spec(n_clients=4, checkpoint_every=0)
        outcome = execute(
            make_record(spec),
            store,
            str(tmp_path),
            Ledger(),
            ControlScript(preempt_at=1),
            [],
        )
        # The preempt flag is ignored (nothing to resume from); the job runs
        # to completion instead of losing its progress.
        assert outcome.status == "done"


class TestCancellation:
    def test_cancel_mid_run_discards_the_checkpoint(self, tmp_path, store):
        spec = make_spec(n_clients=5)
        events = []
        outcome = execute(
            make_record(spec),
            store,
            str(tmp_path),
            Ledger(),
            ControlScript(cancel_at=2),
            events,
        )
        assert outcome.status == "cancelled"
        assert events[-1]["event"] == "cancelled"
        assert not os.path.exists(checkpoint_path(str(tmp_path), "job-000001"))
        assert not os.path.exists(result_path(str(tmp_path), "job-000001"))

    def test_cancel_wins_over_a_simultaneous_preempt(self, tmp_path, store):
        spec = make_spec(n_clients=5)
        outcome = execute(
            make_record(spec),
            store,
            str(tmp_path),
            Ledger(),
            ControlScript(cancel_at=2, preempt_at=2),
            [],
        )
        assert outcome.status == "cancelled"


class TestWarmStore:
    def test_second_identical_job_rides_the_store_for_free(self, tmp_path, store):
        spec = make_spec(n_clients=5)
        ledger = Ledger()
        cold = execute(
            make_record(spec, "job-000001"),
            store,
            str(tmp_path),
            ledger,
            ControlScript(),
            [],
        )
        warm = execute(
            make_record(spec, "job-000002"),
            store,
            str(tmp_path),
            ledger,
            ControlScript(),
            [],
        )
        assert cold.fl_trainings > 0
        assert warm.fl_trainings == 0
        assert warm.store_hits > 0
        assert warm.result["result"]["values"] == cold.result["result"]["values"]
        assert ledger.duplicates() == 0

    def test_real_jobstore_ledger_confirms_the_invariant(self, tmp_path, store):
        spec = make_spec(n_clients=4)
        with JobStore(str(tmp_path)) as jobs:
            for job_id in ("job-000001", "job-000002"):
                run_job(
                    make_record(spec, job_id),
                    store,
                    str(tmp_path),
                    jobs.record_training,
                    ControlScript().flags,
                    list().append,
                    quiet,
                )
            total, distinct = jobs.training_counts()
            assert total == distinct > 0
