"""The process-backend picklability contract (the RPR004 rule's referent).

Everything the ``process`` executor backend ships to a worker — model
factories, declarative task specs and their registered builders, scenario
definitions — must survive ``pickle.dumps``/``pickle.loads``.  A lambda or
closure anywhere on these paths works under the serial and thread backends
and then breaks the moment ``--backend process`` is selected, which is why
``repro check`` (rule RPR004) points here: this test pins the contract the
rule enforces statically.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.specs import TASK_REGISTRY, TaskSpec
from repro.experiments.tasks import MODEL_NAMES, _model_factory
from repro.scenarios import BUILTIN_SCENARIOS


def _round_trip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.mark.parametrize("model", MODEL_NAMES)
def test_every_registered_model_factory_pickles(model):
    factory = _model_factory(
        model,
        n_features=8,
        n_classes=3,
        image_size=8,
        scale=ExperimentScale.from_name("tiny"),
    )
    restored = _round_trip(factory)
    # The restored factory must still *work*, not merely deserialize: a
    # worker process rebuilds the model from it before every evaluation.
    assert type(restored()) is type(factory())


@pytest.mark.parametrize("kind", sorted(TASK_REGISTRY))
def test_every_task_builder_pickles(kind):
    builder = TASK_REGISTRY[kind]
    assert _round_trip(builder) is builder  # module-level: pickled by reference


def _spec_for(kind: str) -> TaskSpec:
    if kind == "synthetic":
        return TaskSpec(kind, setup="same-size-same-distribution", scale="tiny")
    if kind == "scenario":
        return TaskSpec(kind, scenario="free-rider", scale="tiny")
    return TaskSpec(kind, scale="tiny")


@pytest.mark.parametrize("kind", sorted(TASK_REGISTRY))
def test_every_task_spec_pickles(kind):
    spec = _spec_for(kind)
    assert _round_trip(spec) == spec


@pytest.mark.parametrize(
    "scenario", BUILTIN_SCENARIOS, ids=[s.name for s in BUILTIN_SCENARIOS]
)
def test_every_catalog_scenario_pickles(scenario):
    restored = _round_trip(scenario)
    assert restored == scenario
    assert restored.layout() == scenario.layout()


def test_synthetic_evaluator_pickles():
    # End to end: ``trainer.utility`` is the evaluator the batch oracle hands
    # to executors — exactly what the process backend pickles per worker.
    spec = _spec_for("synthetic")
    oracle = spec.build()
    evaluator = _round_trip(oracle.trainer.utility)
    coalition = (0,)
    assert evaluator(coalition) == oracle.trainer.utility(coalition)
