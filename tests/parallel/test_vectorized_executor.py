"""VectorizedExecutor integration: resolution, fallback and configuration."""

import numpy as np
import pytest

from repro.core import IPSS
from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import CoalitionUtility, FLConfig
from repro.models import LogisticRegressionModel
from repro.parallel import (
    BatchUtilityOracle,
    SerialExecutor,
    VectorizedExecutor,
    make_executor,
)

from tests.helpers import monotone_game

SEED = 17


def build_utility(executor="vectorized", **kwargs):
    pooled = make_classification_blobs(160, n_features=4, n_classes=2, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    clients = partition_iid(train, 4, seed=SEED)
    return CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=lambda: LogisticRegressionModel(n_features=4, n_classes=2, epochs=2),
        config=FLConfig(rounds=2),
        seed=SEED,
        executor=executor,
        **kwargs,
    )


class TestMakeExecutor:
    def test_vectorized_backend_name(self):
        executor = make_executor("vectorized", 4)
        assert isinstance(executor, VectorizedExecutor)
        assert executor.name == "vectorized"

    def test_set_n_workers_keeps_vectorized_backend(self):
        oracle = BatchUtilityOracle(
            monotone_game(4), n_clients=4, executor="vectorized"
        )
        executor = oracle.executor
        oracle.set_n_workers(3)
        assert oracle.executor is executor  # kept verbatim, like custom instances

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            VectorizedExecutor(chunk_size=0)


class TestFallback:
    def test_plain_game_falls_back_to_serial(self):
        game = monotone_game(5, seed=2)
        oracle = BatchUtilityOracle(game, n_clients=5, executor="vectorized")
        batch = [{0}, {1, 2}, frozenset()]
        results = oracle.evaluate_batch(batch)
        for coalition in batch:
            assert results[frozenset(coalition)] == game._table[frozenset(coalition)]
        assert isinstance(oracle.executor, VectorizedExecutor)
        assert "not backed by a FederatedTrainer" in oracle.executor.last_fallback_reason

    def test_strict_mode_raises_instead(self):
        game = monotone_game(3, seed=2)
        oracle = BatchUtilityOracle(
            game, n_clients=3, executor=VectorizedExecutor(strict=True)
        )
        with pytest.raises(ValueError, match="cannot engage"):
            oracle.evaluate_batch([{0}, {1}])

    def test_fallback_values_match_serial_loop(self):
        """A blocked FL trainer (client_fraction < 1) still evaluates
        correctly — through the serial loop, values identical to serial."""
        pooled = make_classification_blobs(120, n_features=4, n_classes=2, seed=SEED)
        train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
        clients = partition_iid(train, 3, seed=SEED)

        def factory():
            return LogisticRegressionModel(n_features=4, n_classes=2, epochs=1)

        config = FLConfig(rounds=2, client_fraction=0.5)
        serial = CoalitionUtility(clients, test, factory, config=config, seed=SEED)
        vectorized = CoalitionUtility(
            clients, test, factory, config=config, seed=SEED, executor="vectorized"
        )
        plan = [{0}, {1}, {0, 1}, {0, 1, 2}]
        assert serial.evaluate_batch(plan) == vectorized.evaluate_batch(plan)
        assert "client_fraction" in vectorized.executor.last_fallback_reason


class TestAlgorithmsThroughVectorizedBackend:
    def test_ipss_values_identical_to_serial(self):
        serial = build_utility("serial")
        vectorized = build_utility("vectorized")
        values_serial = IPSS(total_rounds=10, seed=SEED).run(serial, 4).values
        values_vectorized = IPSS(total_rounds=10, seed=SEED).run(vectorized, 4).values
        np.testing.assert_array_equal(values_serial, values_vectorized)
        assert serial.evaluations == vectorized.evaluations

    def test_single_coalition_calls_agree_with_batches(self):
        """``oracle(S)`` (serial path) and a later batch must cohere."""
        utility = build_utility("vectorized")
        single = utility({0, 1})
        batched = utility.evaluate_batch([{0, 1}, {2}])
        assert batched[frozenset({0, 1})] == single  # cache hit, no retrain
        assert utility.evaluations == 2

    def test_executor_upgrade_after_construction(self):
        utility = build_utility("serial")
        assert isinstance(utility.executor, SerialExecutor)
        utility.set_n_workers(1, "vectorized")
        assert isinstance(utility.executor, VectorizedExecutor)
        values = IPSS(total_rounds=8, seed=SEED).run(utility, 4).values
        assert values.shape == (4,)
