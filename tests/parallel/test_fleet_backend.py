"""The fleet backend end-to-end: subprocess workers, crashes, the pipeline.

These are the fleet PR's acceptance tests proper: real ``repro worker``
subprocesses drain a real SQLite queue, one gets SIGKILLed mid-batch, and
the run still finishes bitwise-identical to serial with zero duplicated
trainings (the queue ledger's ``COUNT(*) == COUNT(DISTINCT key)``).
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import IPSS
from repro.experiments.pipeline import ExperimentPlan, run_plan
from repro.experiments.specs import TaskSpec
from repro.fleet import FleetExecutor, LeaseQueue, ModeledCostEvaluator
from repro.parallel import BatchUtilityOracle
from repro.parallel.executors import SerialExecutor
from repro.store import MemoryUtilityStore, open_store

from tests.helpers import FleetHarness

N = 8
SEED = 11


def grid(n=N):
    """A deterministic mixed-size coalition plan (prefixes + pairs)."""
    plan = [frozenset(range(k)) for k in range(1, n + 1)]
    plan += [frozenset({i, (i + 3) % n}) for i in range(n)]
    return plan


class TestFleetWiring:
    def test_rejects_memory_store(self, tmp_path):
        evaluator = ModeledCostEvaluator(n_clients=4, seed=SEED)
        executor = FleetExecutor(queue_dir=str(tmp_path / "q"))
        oracle = BatchUtilityOracle(
            evaluator,
            executor=executor,
            store=MemoryUtilityStore(),
            store_namespace="ns",
        )
        with pytest.raises(RuntimeError, match="disk-backed"):
            oracle.evaluate_batch([{0, 1}])
        oracle.close()

    def test_requires_a_bound_store(self, tmp_path):
        evaluator = ModeledCostEvaluator(n_clients=4, seed=SEED)
        executor = FleetExecutor(queue_dir=str(tmp_path / "q"))
        oracle = BatchUtilityOracle(evaluator, executor=executor)
        with pytest.raises(RuntimeError, match="persistent"):
            oracle.evaluate_batch([{0, 1}])
        oracle.close()

    def test_batch_sizing_bounds(self, tmp_path):
        executor = FleetExecutor(queue_dir=str(tmp_path / "q"), spawn_workers=4)
        assert executor._batch_size_for(1) == 1
        assert 1 <= executor._batch_size_for(64) <= 32
        executor.close()
        explicit = FleetExecutor(queue_dir=str(tmp_path / "q"), batch_size=5)
        assert executor._batch_size_for(1000) <= 32
        assert explicit._batch_size_for(1000) == 5
        explicit.close()


class TestSubprocessWorkers:
    def test_spawned_workers_bitwise_match_serial(self, tmp_path):
        evaluator = ModeledCostEvaluator(n_clients=N, tau=0.0, seed=SEED)
        store_path = str(tmp_path / "store.sqlite")
        coalitions = grid()

        executor = FleetExecutor(
            queue_dir=str(tmp_path / "q"),
            spawn_workers=2,
            batch_size=3,
            lease_seconds=10.0,
            poll_interval=0.02,
            stall_timeout=120.0,
        )
        with open_store(store_path) as store:
            oracle = BatchUtilityOracle(
                evaluator, executor=executor, store=store, store_namespace="fleet-sp"
            )
            fleet_values = oracle.evaluate_batch(coalitions)
            assert oracle.evaluations == len(coalitions)
            assert oracle.store_hits == 0
            oracle.close()

        serial = SerialExecutor().map_utilities(evaluator, coalitions)
        assert [fleet_values[c] for c in coalitions] == serial  # bitwise

        with LeaseQueue(str(tmp_path / "q")) as queue:
            total, distinct = queue.training_counts()
            assert total == distinct == len(coalitions)
            assert len(queue.workers()) >= 1
            assert queue.active_runs() == []  # close() finished the run

    def test_sigkill_mid_batch_requeues_and_finishes_identically(self, tmp_path):
        # Slow evaluations + short leases: kill the only worker mid-batch,
        # let the lease expire, and the respawned worker must finish the
        # plan bitwise-identical with zero duplicated trainings.
        evaluator = ModeledCostEvaluator(n_clients=N, tau=0.08, seed=SEED)
        store_path = str(tmp_path / "store.sqlite")
        queue_dir = str(tmp_path / "q")
        coalitions = grid()

        executor = FleetExecutor(
            queue_dir=queue_dir,
            spawn_workers=1,
            batch_size=4,
            lease_seconds=1.0,
            poll_interval=0.02,
            stall_timeout=120.0,
        )
        results = {}

        def drain():
            with open_store(store_path) as store:
                oracle = BatchUtilityOracle(
                    evaluator,
                    executor=executor,
                    store=store,
                    store_namespace="fleet-kill",
                )
                results["values"] = oracle.evaluate_batch(coalitions)
                oracle.close()

        thread = threading.Thread(target=drain)
        thread.start()
        try:
            # Wait until the spawned worker holds a lease, then SIGKILL it.
            killed = None
            deadline = time.monotonic() + 60
            with LeaseQueue(queue_dir) as queue:
                while time.monotonic() < deadline:
                    pids = executor.worker_pids()
                    if pids and queue.counts().leased > 0:
                        killed = pids[0]
                        os.kill(killed, signal.SIGKILL)
                        break
                    time.sleep(0.02)
            assert killed is not None, "worker never claimed a batch"
        finally:
            thread.join(timeout=180)
        assert not thread.is_alive()

        serial = SerialExecutor().map_utilities(evaluator, coalitions)
        assert [results["values"][c] for c in coalitions] == serial  # bitwise

        with LeaseQueue(queue_dir) as queue:
            total, distinct = queue.training_counts()
            assert total == distinct  # zero duplicated trainings
            assert queue.depth() == 0  # nothing dangling
        # The killed worker's batch really was re-delivered to a respawn.
        assert executor._respawns >= 1


class TestWarmStore:
    def test_second_pass_trains_nothing(self, tmp_path):
        harness = FleetHarness(tmp_path)
        evaluator = ModeledCostEvaluator(n_clients=N, seed=SEED)
        store_path = harness.fresh_store_path()
        coalitions = grid()
        try:
            for expected_trainings in (len(coalitions), 0):
                executor = harness.executor(batch_size=4)
                with open_store(store_path) as store:
                    oracle = BatchUtilityOracle(
                        evaluator,
                        executor=executor,
                        store=store,
                        store_namespace="fleet-warm",
                    )
                    oracle.evaluate_batch(coalitions)
                    assert oracle.evaluations == expected_trainings
                    oracle.close()
            total, distinct = harness.training_counts()
            assert total == distinct == len(coalitions)
        finally:
            harness.close()


class TestFailurePropagation:
    def test_exhausted_batch_raises_with_the_workers_error(self, tmp_path):
        harness = FleetHarness(tmp_path)
        store_path = harness.fresh_store_path()
        try:
            executor = harness.executor(max_attempts=2)
            with open_store(store_path) as store:
                oracle = BatchUtilityOracle(
                    ExplodingEvaluator(),
                    executor=executor,
                    store=store,
                    store_namespace="fleet-err",
                )
                with pytest.raises(RuntimeError, match="exploded"):
                    oracle.evaluate_batch([{0, 1}, {2}])
                oracle.close()
        finally:
            harness.close()

    def test_stall_without_workers_raises(self, tmp_path):
        evaluator = ModeledCostEvaluator(n_clients=4, seed=SEED)
        executor = FleetExecutor(
            queue_dir=str(tmp_path / "q"),
            spawn_workers=0,
            poll_interval=0.02,
            stall_timeout=0.3,
        )
        with open_store(str(tmp_path / "store.sqlite")) as store:
            oracle = BatchUtilityOracle(
                evaluator, executor=executor, store=store, store_namespace="ns"
            )
            with pytest.raises(RuntimeError, match="stalled"):
                oracle.evaluate_batch([{0, 1}])
            oracle.close()


class ExplodingEvaluator:
    n_clients = 4

    def __call__(self, coalition):
        raise RuntimeError("training exploded")


class TestAlgorithmOnFleet:
    def test_ipss_values_match_serial(self, tmp_path):
        harness = FleetHarness(tmp_path)
        try:
            evaluator = ModeledCostEvaluator(n_clients=N, seed=SEED)
            reference = IPSS(total_rounds=16, seed=SEED).run(
                BatchUtilityOracle(evaluator, n_clients=N), N
            )
            executor = harness.executor(batch_size=4)
            with open_store(harness.fresh_store_path()) as store:
                oracle = BatchUtilityOracle(
                    evaluator,
                    n_clients=N,
                    executor=executor,
                    store=store,
                    store_namespace="fleet-ipss",
                )
                result = IPSS(total_rounds=16, seed=SEED).run(oracle, N)
                oracle.close()
            assert result.values.tolist() == reference.values.tolist()
            total, distinct = harness.training_counts()
            assert total == distinct
        finally:
            harness.close()


def _cell_values(run_dir):
    """The single done cell's value vector from a run directory."""
    results_dir = os.path.join(run_dir, "results")
    (name,) = sorted(os.listdir(results_dir))
    with open(os.path.join(results_dir, name), "r", encoding="utf-8") as handle:
        return np.asarray(json.load(handle)["result"]["values"], dtype=float)


class TestPipelineIntegration:
    def test_run_plan_backend_fleet_matches_serial(self, tmp_path):
        spec = TaskSpec(
            kind="synthetic",
            setup="same-size-same-distribution",
            model="logistic",
            n_clients=3,
            scale="tiny",
            seed=SEED,
        )
        serial_plan = ExperimentPlan(tasks=(spec,), algorithms=("MC-Shapley",))
        serial_report = run_plan(
            serial_plan, str(tmp_path / "run-serial"), store=None
        )

        harness = FleetHarness(tmp_path / "fleet")
        try:
            fleet_plan = ExperimentPlan(
                tasks=(spec,),
                algorithms=("MC-Shapley",),
                backend="fleet",
                queue_dir=harness.queue_dir,
                lease_seconds=10.0,
            )
            fleet_report = run_plan(
                fleet_plan,
                str(tmp_path / "run-fleet"),
                store=harness.fresh_store_path(),
            )
        finally:
            harness.close()

        np.testing.assert_array_equal(
            _cell_values(str(tmp_path / "run-serial")),
            _cell_values(str(tmp_path / "run-fleet")),
        )
        assert fleet_report.fl_trainings == serial_report.fl_trainings
        assert "fleet" in fleet_report.batch_counts

    def test_plan_validation(self, tmp_path):
        spec = TaskSpec(kind="adult", model="logistic", n_clients=3, scale="tiny")
        with pytest.raises(ValueError, match="queue directory"):
            ExperimentPlan(tasks=(spec,), backend="fleet")
        with pytest.raises(ValueError, match="worker backend"):
            ExperimentPlan(
                tasks=(spec,),
                backend="fleet",
                queue_dir=str(tmp_path),
                worker_backend="fleet",
            )
        plan = ExperimentPlan(
            tasks=(spec,), backend="fleet", queue_dir=str(tmp_path)
        )
        with pytest.raises(ValueError, match="persistent"):
            run_plan(plan, str(tmp_path / "run"), store=None)

    def test_fingerprint_ignores_fleet_fields(self, tmp_path):
        spec = TaskSpec(kind="adult", model="logistic", n_clients=3, scale="tiny")
        base = ExperimentPlan(tasks=(spec,), algorithms=("IPSS",))
        fleet = ExperimentPlan(
            tasks=(spec,),
            algorithms=("IPSS",),
            backend="fleet",
            queue_dir=str(tmp_path),
            spawn_workers=4,
            worker_backend="vectorized",
            lease_seconds=5.0,
        )
        assert base.fingerprint() == fleet.fingerprint()

    def test_plan_dict_roundtrip_keeps_fleet_fields(self, tmp_path):
        spec = TaskSpec(kind="adult", model="logistic", n_clients=3, scale="tiny")
        plan = ExperimentPlan(
            tasks=(spec,),
            algorithms=("IPSS",),
            backend="fleet",
            queue_dir=str(tmp_path),
            spawn_workers=2,
            worker_backend="serial",
            lease_seconds=7.5,
        )
        restored = ExperimentPlan.from_dict(plan.to_dict())
        assert restored == plan
