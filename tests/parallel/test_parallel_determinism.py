"""Parallel execution must be value-preserving.

The acceptance bar for the batched engine: running any sampling algorithm
through a :class:`BatchUtilityOracle` with ``n_workers=4`` (thread or process
backend) produces **bitwise-identical** ``ValuationResult.values`` to serial
execution on the same seed.  This holds because (a) all randomness lives in
the algorithm's own generator, which is untouched by how utilities are
evaluated, and (b) per-coalition training seeds are content-derived, so a
coalition's utility is the same whichever worker computes it.
"""

import time

import numpy as np
import pytest

from repro.core import IPSS, KGreedy, MCShapley, PermShapley, StratifiedSampling
from repro.parallel import BatchUtilityOracle

from tests.helpers import monotone_game

N_CLIENTS = 6
SEED = 11


def algorithms():
    return [
        StratifiedSampling(total_rounds=20, scheme="mc", seed=SEED),
        StratifiedSampling(total_rounds=20, scheme="cc", pair_on_demand=True, seed=SEED),
        MCShapley(seed=SEED),
        PermShapley(seed=SEED),
        KGreedy(max_size=2, seed=SEED),
        IPSS(total_rounds=24, seed=SEED),
    ]


def run_with(executor, n_workers):
    game = monotone_game(N_CLIENTS, seed=SEED)
    oracle = BatchUtilityOracle(
        game, n_clients=N_CLIENTS, n_workers=n_workers, executor=executor
    )
    return {
        algorithm.name: algorithm.run(oracle, N_CLIENTS).values
        for algorithm in algorithms()
    }


class TestExecutorDeterminism:
    @pytest.mark.parametrize("executor,n_workers", [("thread", 4), ("serial", 1)])
    def test_identical_to_plain_callable(self, executor, n_workers):
        """Batched (serial or 4-thread) == the plain sequential code path.

        ``game.utility`` is a bare bound method with no ``evaluate_batch``,
        so it exercises the sequential fallback of the planning hook.
        """
        game = monotone_game(N_CLIENTS, seed=SEED)
        plain = {
            algorithm.name: algorithm.run(game.utility, N_CLIENTS).values
            for algorithm in algorithms()
        }
        batched = run_with(executor, n_workers)
        for name, values in plain.items():
            assert np.array_equal(values, batched[name]), name

    def test_thread_pool_bitwise_identical_to_serial(self):
        serial = run_with("serial", 1)
        threaded = run_with("thread", 4)
        for name in serial:
            assert np.array_equal(serial[name], threaded[name]), name

    def test_process_pool_bitwise_identical_to_serial(self):
        serial = run_with("serial", 1)
        multiproc = run_with("process", 2)
        for name in serial:
            assert np.array_equal(serial[name], multiproc[name]), name

    def test_repeated_parallel_runs_are_stable(self):
        first = run_with("thread", 4)
        second = run_with("thread", 4)
        for name in first:
            assert np.array_equal(first[name], second[name]), name


class TestCoalitionUtilityParallel:
    """End to end on the real FL substrate: CoalitionUtility(n_workers=4)."""

    @staticmethod
    def build_utility(n_workers):
        from repro.datasets import (
            make_classification_blobs,
            partition_iid,
            train_test_split,
        )
        from repro.fl import CoalitionUtility, FLConfig
        from repro.models import LogisticRegressionModel

        pooled = make_classification_blobs(160, n_features=4, n_classes=2, seed=SEED)
        train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
        clients = partition_iid(train, 4, seed=SEED)
        return CoalitionUtility(
            client_datasets=clients,
            test_dataset=test,
            model_factory=lambda: LogisticRegressionModel(
                n_features=4, n_classes=2, epochs=2
            ),
            config=FLConfig(rounds=2),
            seed=SEED,
            n_workers=n_workers,
        )

    def test_fl_training_values_identical_across_workers(self):
        serial = MCShapley(seed=SEED).run(self.build_utility(1)).values
        parallel = MCShapley(seed=SEED).run(self.build_utility(4)).values
        assert np.array_equal(serial, parallel)

    def test_ipss_on_fl_identical_across_workers(self):
        serial = IPSS(total_rounds=10, seed=SEED).run(self.build_utility(1)).values
        parallel = IPSS(total_rounds=10, seed=SEED).run(self.build_utility(4)).values
        assert np.array_equal(serial, parallel)

    def test_evaluation_accounting_matches_serial(self):
        one = self.build_utility(1)
        four = self.build_utility(4)
        MCShapley(seed=SEED).run(one)
        MCShapley(seed=SEED).run(four)
        assert one.evaluations == four.evaluations == 2**4


class SlowGame:
    """Picklable monotone game with an artificial per-coalition cost τ.

    ``time.sleep`` releases the GIL, so thread workers overlap exactly the
    way real FL trainings overlap across processes or machines.
    """

    def __init__(self, n_clients, cost):
        self.n_clients = n_clients
        self.cost = cost
        self._game = monotone_game(n_clients, seed=SEED)

    def __call__(self, coalition):
        time.sleep(self.cost)
        return self._game(coalition)


class TestParallelSpeedup:
    def test_four_workers_beat_serial_on_modeled_cost(self):
        """With a modeled τ of 20 ms per coalition, 4 workers must finish the
        same StratifiedSampling run at least 1.5× faster than serial."""
        algorithm = StratifiedSampling(total_rounds=16, scheme="mc", seed=SEED)

        def timed(n_workers):
            oracle = BatchUtilityOracle(
                SlowGame(N_CLIENTS, cost=0.02),
                n_clients=N_CLIENTS,
                n_workers=n_workers,
                executor="thread" if n_workers > 1 else "serial",
            )
            start = time.perf_counter()
            values = algorithm.run(oracle, N_CLIENTS).values
            return time.perf_counter() - start, values

        serial_time, serial_values = timed(1)
        parallel_time, parallel_values = timed(4)
        assert np.array_equal(serial_values, parallel_values)
        assert serial_time / parallel_time > 1.5
