"""Tests for the batched coalition-evaluation engine (repro.parallel)."""

import threading
import time

import pytest

from repro.parallel import (
    BatchUtilityOracle,
    EXECUTOR_BACKENDS,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    coalition_batch_keys,
    make_executor,
)

from tests.helpers import monotone_game


class CountingGame:
    """Picklable counting evaluator: U(S) = |S| with a call log."""

    def __init__(self):
        self.calls = []

    def __call__(self, coalition):
        self.calls.append(frozenset(coalition))
        return float(len(coalition))


class TestCoalitionBatchKeys:
    def test_dedupes_preserving_first_appearance_order(self):
        keys = coalition_batch_keys([{1, 0}, {2}, [0, 1], (2,), frozenset()])
        assert keys == [frozenset({0, 1}), frozenset({2}), frozenset()]

    def test_empty(self):
        assert coalition_batch_keys([]) == []


class TestMakeExecutor:
    def test_default_serial_for_one_worker(self):
        assert isinstance(make_executor(None, 1), SerialExecutor)

    def test_default_thread_for_many_workers(self):
        executor = make_executor(None, 4)
        assert isinstance(executor, ThreadPoolExecutor)
        assert executor.n_workers == 4

    @pytest.mark.parametrize(
        "name", [b for b in EXECUTOR_BACKENDS if b != "fleet"]
    )
    def test_named_backends(self, name):
        assert make_executor(name, 2) is not None

    def test_fleet_needs_explicit_construction(self):
        # The fleet backend is registered but not name-constructible: it
        # needs a queue directory, so the error must say how to get one.
        assert "fleet" in EXECUTOR_BACKENDS
        with pytest.raises(ValueError, match="queue directory"):
            make_executor("fleet", 2)

    def test_fleet_instance_passthrough(self, tmp_path):
        from repro.fleet import FleetExecutor

        executor = FleetExecutor(queue_dir=str(tmp_path / "q"))
        assert make_executor(executor, 2) is executor
        executor.close()

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert make_executor(executor, 8) is executor

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            make_executor("gpu", 2)

    def test_invalid_workers_raise(self):
        with pytest.raises(ValueError):
            make_executor(None, 0)
        with pytest.raises(ValueError):
            ThreadPoolExecutor(0)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(-1)


class TestBatchUtilityOracle:
    def test_single_call_interface(self):
        oracle = BatchUtilityOracle(CountingGame(), n_clients=4)
        assert oracle({0, 1}) == 2.0
        assert oracle.utility({0, 1}) == 2.0  # cached
        assert oracle.evaluations == 1
        assert oracle.cache_hits == 1
        assert oracle.n_clients == 4

    def test_n_clients_inferred_from_evaluator(self):
        game = monotone_game(5)
        oracle = BatchUtilityOracle(game)
        assert oracle.n_clients == 5

    def test_n_clients_unknown_raises(self):
        oracle = BatchUtilityOracle(CountingGame())
        with pytest.raises(AttributeError):
            oracle.n_clients

    def test_batch_dedupes_and_preserves_order(self):
        game = CountingGame()
        oracle = BatchUtilityOracle(game, n_clients=4)
        results = oracle.evaluate_batch([{0}, {1, 2}, [0], frozenset()])
        assert list(results) == [frozenset({0}), frozenset({1, 2}), frozenset()]
        assert results[frozenset({1, 2})] == 2.0
        assert oracle.evaluations == 3  # duplicate {0} trained once

    def test_batch_uses_cache_across_calls(self):
        game = CountingGame()
        oracle = BatchUtilityOracle(game, n_clients=4)
        oracle.evaluate_batch([{0}, {1}])
        oracle.evaluate_batch([{0}, {2}])
        assert oracle.evaluations == 3
        assert oracle.cache_hits == 1

    def test_empty_batch(self):
        oracle = BatchUtilityOracle(CountingGame(), n_clients=2)
        assert oracle.evaluate_batch([]) == {}

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_backends_agree(self, executor):
        game = monotone_game(5, seed=3)
        oracle = BatchUtilityOracle(game, n_clients=5, n_workers=3, executor=executor)
        batch = [{0}, {1, 2}, {0, 1, 2, 3, 4}, frozenset(), {4}]
        results = oracle.evaluate_batch(batch)
        for coalition in batch:
            key = frozenset(coalition)
            assert results[key] == game._table[key]

    def test_process_backend_deposits_into_parent_cache(self):
        game = monotone_game(4, seed=1)
        oracle = BatchUtilityOracle(game, n_clients=4, n_workers=2, executor="process")
        oracle.evaluate_batch([{0}, {1}, {0, 1}])
        assert oracle.evaluations == 3
        # Second pass is all hits — nothing crosses a process boundary again.
        oracle.evaluate_batch([{0}, {1}, {0, 1}])
        assert oracle.evaluations == 3
        assert oracle.cache_hits == 3

    def test_set_n_workers_reconfigures(self):
        oracle = BatchUtilityOracle(CountingGame(), n_clients=3)
        assert oracle.n_workers == 1
        oracle.set_n_workers(4)
        assert oracle.n_workers == 4
        assert isinstance(oracle.executor, ThreadPoolExecutor)  # serial upgrades
        with pytest.raises(ValueError):
            oracle.set_n_workers(0)

    def test_set_n_workers_preserves_configured_backend(self):
        """Resizing without naming a backend must keep a configured process
        pool a process pool (and keep custom executor instances verbatim)."""
        oracle = BatchUtilityOracle(
            CountingGame(), n_clients=3, n_workers=4, executor="process"
        )
        oracle.set_n_workers(2)
        assert isinstance(oracle.executor, ProcessPoolExecutor)
        assert oracle.executor.n_workers == 2

        class RecordingExecutor(SerialExecutor):
            pass

        custom = RecordingExecutor()
        oracle = BatchUtilityOracle(CountingGame(), n_clients=3, executor=custom)
        oracle.set_n_workers(2)
        assert oracle.executor is custom
        # An explicit backend name still overrides.
        oracle.set_n_workers(3, "thread")
        assert isinstance(oracle.executor, ThreadPoolExecutor)

    def test_reset_cache(self):
        oracle = BatchUtilityOracle(CountingGame(), n_clients=3)
        oracle.evaluate_batch([{0}, {1}])
        oracle.reset_cache()
        assert oracle.evaluations == 0
        oracle.evaluate_batch([{0}])
        assert oracle.evaluations == 1

    def test_prefetch_warms_cache(self):
        game = CountingGame()
        oracle = BatchUtilityOracle(game, n_clients=3, n_workers=2)
        oracle.prefetch([{0, 1}, {2}])
        assert oracle.evaluations == 2
        assert oracle({0, 1}) == 2.0
        assert oracle.evaluations == 2  # hit


class TestConcurrentAccounting:
    def test_hit_miss_accounting_under_concurrent_batches(self):
        """Overlapping batches from many threads never double-train a
        coalition, and hits + misses add up to total lookups."""
        calls = []
        lock = threading.Lock()

        def evaluator(coalition):
            with lock:
                calls.append(frozenset(coalition))
            time.sleep(0.002)  # widen the race window
            return float(len(coalition))

        oracle = BatchUtilityOracle(evaluator, n_clients=6, n_workers=4)
        batches = [
            [{0}, {1}, {0, 1}, {2}],
            [{1}, {2}, {3}, {0, 1}],
            [{3}, {4}, {0}, {5}],
            [{5}, {4}, {2}, {1}],
        ]
        threads = [
            threading.Thread(target=oracle.evaluate_batch, args=(batch,))
            for batch in batches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        distinct = {frozenset(c) for batch in batches for c in batch}
        assert len(calls) == len(distinct)  # single-flight: one training each
        assert oracle.evaluations == len(distinct)
        lookups = sum(len(coalition_batch_keys(batch)) for batch in batches)
        assert oracle.cache_hits + oracle.evaluations == lookups


class TestOracleContextManager:
    def test_with_statement_closes_executor_pool(self):
        with BatchUtilityOracle(
            CountingGame(), n_clients=4, n_workers=2, executor="thread"
        ) as oracle:
            oracle.evaluate_batch([{0}, {1}, {0, 1}])
            assert oracle.evaluations == 3
        assert oracle.executor._pool is None  # pool released on exit

    def test_exception_inside_with_still_closes(self):
        oracle = BatchUtilityOracle(
            CountingGame(), n_clients=4, n_workers=2, executor="thread"
        )
        with pytest.raises(RuntimeError):
            with oracle:
                oracle.evaluate_batch([{0}, {1}])
                raise RuntimeError("boom")
        assert oracle.executor._pool is None

    def test_reusable_after_close(self):
        with BatchUtilityOracle(CountingGame(), n_clients=4) as oracle:
            oracle.utility({0})
        assert oracle.utility({0}) == 1.0  # cache survives; pool re-spawns lazily
