"""Interrupt/resume parity across all five executor backends.

The anytime contract must hold regardless of how coalition utilities are
evaluated: kill a run mid-chunk, restore from the JSON checkpoint, and the
final values are bitwise-identical to an uninterrupted run on the same
backend (and equal across backends up to the documented vectorized
tolerance).  Everything is module-level so the process backend — and the
fleet queue payload — can pickle the evaluators; fleet runs drain through
an in-process worker thread (:class:`tests.helpers.FleetHarness`) over a
real SQLite queue.
"""

import json
from functools import partial

import numpy as np
import pytest

from repro.core import IPSS, EstimatorState, StratifiedSampling
from repro.datasets import make_classification_blobs, partition_iid, train_test_split
from repro.fl import CoalitionUtility, FLConfig
from repro.models import LogisticRegressionModel
from repro.parallel import EXECUTOR_BACKENDS
from repro.store import MemoryUtilityStore

from tests.helpers import FleetHarness

BACKENDS = list(EXECUTOR_BACKENDS)
SEED = 23
N = 4
GAMMA = 12


@pytest.fixture(scope="module")
def fleet_env(tmp_path_factory):
    env = FleetHarness(tmp_path_factory.mktemp("fleet-anytime"))
    yield env
    env.close()


def model_factory(n_features):
    return partial(LogisticRegressionModel, n_features=n_features, n_classes=2, epochs=2)


def build_utility(backend: str, store=None, fleet=None):
    pooled = make_classification_blobs(160, n_features=5, n_classes=2, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    clients = partition_iid(train, N, seed=SEED)
    if backend == "fleet":
        # Fleet always needs a disk-backed store; a fresh SQLite file per
        # utility stands in for the "no store" configurations.
        executor = fleet.executor()
        store = store if store is not None else fleet.fresh_store_path()
    else:
        executor = backend
    return CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=model_factory(test.n_features),
        config=FLConfig(rounds=2, local_epochs=1),
        seed=SEED,
        n_workers=2 if backend in ("thread", "process") else 1,
        executor=executor,
        store=store,
        store_namespace="anytime-backends" if store is not None else None,
    )


ALGORITHMS = {
    "ipss": lambda: IPSS(total_rounds=GAMMA, partial_chunk_size=2, seed=SEED),
    "stratified": lambda: StratifiedSampling(total_rounds=GAMMA, scheme="mc", seed=SEED),
}


@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
@pytest.mark.parametrize("backend", BACKENDS)
class TestInterruptResumeAcrossBackends:
    def test_killed_mid_run_then_restored_is_bitwise_identical(
        self, backend, algorithm_key, fleet_env
    ):
        factory = ALGORITHMS[algorithm_key]
        with build_utility(backend, fleet=fleet_env) as utility:
            reference = factory().run(utility, N)

        # Kill the run after two chunks; persist the checkpoint as JSON.
        with build_utility(backend, fleet=fleet_env) as utility:
            iterator = factory().iter_run(utility, N)
            snapshot = None
            for index, snapshot in enumerate(iterator, start=1):
                if index == 2:
                    break
            iterator.close()
            assert not snapshot.done
            blob = json.dumps(snapshot.state.to_dict())

        # Restore in a fresh oracle (fresh cache — as after a real crash).
        restored = EstimatorState.from_dict(json.loads(blob))
        with build_utility(backend, fleet=fleet_env) as utility:
            last = None
            for last in factory().iter_run(utility, N, state=restored):
                pass
        assert last.done
        assert last.values.tolist() == reference.values.tolist(), backend
        assert last.evaluations == reference.utility_evaluations

    def test_resume_with_warm_store_trains_nothing(
        self, backend, algorithm_key, fleet_env
    ):
        factory = ALGORITHMS[algorithm_key]
        store = (
            fleet_env.fresh_store_path()
            if backend == "fleet"
            else MemoryUtilityStore()
        )
        with build_utility(backend, store=store, fleet=fleet_env) as utility:
            reference = factory().run(utility, N)

        with build_utility(backend, store=store, fleet=fleet_env) as utility:
            iterator = factory().iter_run(utility, N)
            for index, snapshot in enumerate(iterator, start=1):
                if index == 2:
                    break
            iterator.close()
            blob = json.dumps(snapshot.state.to_dict())

        restored = EstimatorState.from_dict(json.loads(blob))
        with build_utility(backend, store=store, fleet=fleet_env) as utility:
            trainings_before = utility.evaluations
            last = None
            for last in factory().iter_run(utility, N, state=restored):
                pass
            assert utility.evaluations == trainings_before == 0, backend
            assert utility.store_hits > 0
        assert last.values.tolist() == reference.values.tolist()


def test_backends_agree_on_resumed_values(fleet_env):
    """Across backends the resumed values agree within the documented atol."""
    finals = {}
    for backend in BACKENDS:
        with build_utility(backend, fleet=fleet_env) as utility:
            iterator = ALGORITHMS["ipss"]().iter_run(utility, N)
            for index, snapshot in enumerate(iterator, start=1):
                if index == 2:
                    break
            iterator.close()
        restored = EstimatorState.from_dict(json.loads(json.dumps(snapshot.state.to_dict())))
        with build_utility(backend, fleet=fleet_env) as utility:
            last = None
            for last in ALGORITHMS["ipss"]().iter_run(utility, N, state=restored):
                pass
        finals[backend] = last.values
    reference = finals["serial"]
    for backend, values in finals.items():
        np.testing.assert_allclose(values, reference, rtol=0, atol=1e-9, err_msg=backend)
