"""Backend parity: serial / thread / process / vectorized / fleet agree.

The satellite contract of the vectorized-engine PR, extended by the fleet
PR to all five backends: for at least two models × two datasets, every
executor backend produces the same utilities *and* the same ``evaluations``
/ ``store_hits`` accounting — so switching backends can change wall-clock
time and nothing else.

Everything here is module-level (no lambdas) so the process backend — and
the fleet queue payload — can pickle the evaluators.  Fleet runs drain
through an in-process worker thread (:class:`tests.helpers.FleetHarness`)
over a real SQLite queue + store; subprocess workers are covered by
``test_fleet_backend.py``.
"""

from functools import partial

import numpy as np
import pytest

from repro.core import MCShapley
from repro.datasets import (
    make_adult_like,
    make_classification_blobs,
    partition_by_group,
    partition_iid,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig
from repro.models import LogisticRegressionModel, MLPClassifier
from repro.parallel import EXECUTOR_BACKENDS, VectorizedExecutor
from repro.store import MemoryUtilityStore

from tests.helpers import FleetHarness

BACKENDS = list(EXECUTOR_BACKENDS)
SEED = 13
N = 4


def logistic_model(n_features):
    """Picklable zero-arg factory (functools.partial) for the process pool."""
    return partial(LogisticRegressionModel, n_features=n_features, n_classes=2, epochs=2)


def mlp_model(n_features):
    return partial(
        MLPClassifier, n_features=n_features, n_classes=2, hidden_sizes=(5,), batch_size=8
    )


def blob_clients():
    pooled = make_classification_blobs(180, n_features=6, n_classes=2, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    return partition_iid(train, N, seed=SEED), test


def adult_clients():
    pooled = make_adult_like(n_samples=180, n_occupations=8, seed=SEED)
    train, test = train_test_split(pooled, test_fraction=0.25, seed=SEED)
    return partition_by_group(train, N, seed=SEED), test


DATASETS = {"blobs": blob_clients, "adult": adult_clients}
MODELS = {"logistic": logistic_model, "mlp": mlp_model}


@pytest.fixture(scope="module")
def fleet_env(tmp_path_factory):
    env = FleetHarness(tmp_path_factory.mktemp("fleet-parity"))
    yield env
    env.close()


def build_utility(dataset: str, model: str, backend: str, store=None, fleet=None):
    clients, test = DATASETS[dataset]()
    if backend == "fleet":
        # Fleet always needs a disk-backed store — a fresh one stands in for
        # the "no store" configurations the other backends run with.
        executor = fleet.executor()
        store = store if store is not None else fleet.fresh_store_path()
    else:
        executor = backend
    return CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=MODELS[model](test.n_features),
        config=FLConfig(rounds=2, local_epochs=1),
        seed=SEED,
        n_workers=2 if backend in ("thread", "process") else 1,
        executor=executor,
        store=store,
        store_namespace=f"parity-{dataset}-{model}" if store is not None else None,
    )


@pytest.mark.parametrize("model", sorted(MODELS))
@pytest.mark.parametrize("dataset", sorted(DATASETS))
class TestBackendParity:
    def test_utilities_and_accounting_agree(self, dataset, model, fleet_env):
        results = {}
        for backend in BACKENDS:
            with build_utility(dataset, model, backend, fleet=fleet_env) as utility:
                values = MCShapley(seed=SEED).run(utility, N).values
                results[backend] = (values, utility.evaluations, utility.cache_hits)
        reference_values, reference_evals, reference_hits = results["serial"]
        assert reference_evals == 2**N
        for backend in BACKENDS:
            values, evaluations, cache_hits = results[backend]
            np.testing.assert_allclose(
                values, reference_values, rtol=0, atol=1e-9, err_msg=backend
            )
            assert evaluations == reference_evals, backend
            assert cache_hits == reference_hits, backend

    def test_store_hits_accounting_agrees(self, dataset, model, fleet_env):
        for backend in BACKENDS:
            store = (
                fleet_env.fresh_store_path()
                if backend == "fleet"
                else MemoryUtilityStore()
            )
            with build_utility(
                dataset, model, backend, store=store, fleet=fleet_env
            ) as utility:
                first = utility.evaluate_batch([{0}, {1}, {0, 1}, {2, 3}])
                assert utility.evaluations == 4
                assert utility.store_hits == 0
                utility.reset_cache()
                second = utility.evaluate_batch([{0}, {1}, {0, 1}, {2, 3}])
                assert utility.evaluations == 0, backend
                assert utility.store_hits == 4, backend
                assert first == second, backend


class TestVectorizedBitwise:
    """On this stack the vectorized backend is exactly equal, not just close.

    The documented guarantee is ``atol=1e-9`` (kernel selection may round
    differently on other BLAS builds); classification utilities are
    additionally quantised to multiples of 1/len(test), which is what these
    stricter assertions pin down for the supported models.
    """

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_bitwise_equal_utilities(self, model):
        serial = build_utility("blobs", model, "serial")
        vectorized = build_utility("blobs", model, "vectorized")
        plan = [{0}, {1}, {2}, {3}, {0, 1}, {1, 2, 3}, {0, 1, 2, 3}, frozenset()]
        np.testing.assert_array_equal(
            np.asarray(list(serial.evaluate_batch(plan).values())),
            np.asarray(list(vectorized.evaluate_batch(plan).values())),
        )
        assert isinstance(vectorized.executor, VectorizedExecutor)
        assert vectorized.executor.last_fallback_reason is None
        assert vectorized.backend == "vectorized"
