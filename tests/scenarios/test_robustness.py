"""Tests for the valuation-robustness harness and its metrics."""

import numpy as np
import pytest

from repro.experiments.pipeline import load_manifest
from repro.experiments.tables import robustness_table
from repro.scenarios import (
    BehaviorSpec,
    Scenario,
    adversaries_strictly_last,
    adversary_ranks,
    build_robustness_plan,
    precision_at_k,
    run_robustness,
)

ALGOS = ("MC-Shapley", "IPSS")


class TestMetrics:
    def test_adversary_ranks_from_bottom(self):
        values = np.array([0.9, 0.1, 0.5, 0.3])
        assert adversary_ranks(values, [1]) == [1]
        assert adversary_ranks(values, [3, 1]) == [1, 2]
        assert adversary_ranks(values, [0]) == [4]

    def test_precision_at_k_defaults_to_adversary_count(self):
        values = np.array([0.9, 0.1, 0.5, 0.3])
        assert precision_at_k(values, [1, 3]) == 1.0
        assert precision_at_k(values, [1, 0]) == 0.5
        assert precision_at_k(values, []) == 1.0
        # Explicit k: plain precision, |bottom-k ∩ adversaries| / k.
        assert precision_at_k(values, [0], k=4) == 0.25
        assert precision_at_k(values, [1], k=1) == 1.0

    def test_precision_at_k_bounds(self):
        with pytest.raises(ValueError):
            precision_at_k(np.ones(3), [0], k=4)

    def test_strictly_last_requires_strict_separation(self):
        assert adversaries_strictly_last(np.array([0.5, 0.4, 0.1]), [2])
        assert not adversaries_strictly_last(np.array([0.5, 0.1, 0.1]), [2])
        assert adversaries_strictly_last(np.array([0.5, 0.4]), [])


class TestPlanConstruction:
    def test_clean_counterparts_deduplicate_by_base(self):
        plan, pairs = build_robustness_plan(
            ["free-rider", "label-flippers"], algorithms=ALGOS
        )
        # Both scenarios share the mnist-like/iid/n=4 base, so the grid is
        # one clean task + two adversarial ones.
        assert len(plan.tasks) == 3
        assert len(pairs) == 2

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario names"):
            build_robustness_plan(["free-rider", "free-rider"])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            build_robustness_plan([])


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One shared cold robustness campaign (module-scoped: FL training)."""
    root = tmp_path_factory.mktemp("robustness")
    report = run_robustness(
        ["free-rider", "label-flippers", "stragglers"],
        run_dir=str(root / "run"),
        algorithms=ALGOS,
        scale="tiny",
        seed=0,
        store=str(root / "store.sqlite"),
    )
    return root, report


class TestRunRobustness:
    def test_exact_shapley_ranks_adversaries_strictly_last(self, campaign):
        """The acceptance bar: free riders and heavy label flippers rank
        strictly last under exact Shapley."""
        _, report = campaign
        for scenario in ("free-rider", "label-flippers"):
            row = report.row(scenario, "MC-Shapley")
            assert row["strictly_last"], (scenario, row)
            assert row["precision_at_k"] == 1.0
            assert row["adversary_ranks"] == list(
                range(1, len(row["adversaries"]) + 1)
            )

    def test_rows_cover_grid_and_carry_values(self, campaign):
        _, report = campaign
        assert len(report.rows) == 3 * len(ALGOS)
        for row in report.rows:
            assert row["status"] == "done"
            assert len(row["values"]) == row["n"]
            assert row["rank_corr_clean"] is not None

    def test_flipper_disturbs_clean_ranking_more_than_straggler(self, campaign):
        _, report = campaign
        flip = report.row("label-flippers", "MC-Shapley")["rank_corr_clean"]
        strag = report.row("stragglers", "MC-Shapley")["rank_corr_clean"]
        assert flip < strag

    def test_warm_rerun_is_training_free(self, campaign):
        root, cold = campaign
        assert cold.fl_trainings > 0
        warm = run_robustness(
            ["free-rider", "label-flippers", "stragglers"],
            run_dir=str(root / "rerun"),
            algorithms=ALGOS,
            scale="tiny",
            seed=0,
            store=str(root / "store.sqlite"),
        )
        assert warm.fl_trainings == 0
        assert warm.store_hits > 0
        for cold_row, warm_row in zip(cold.rows, warm.rows):
            assert cold_row["values"] == warm_row["values"]

    def test_resume_serves_finished_cells_from_manifest(self, campaign):
        root, cold = campaign
        resumed = run_robustness(
            ["free-rider", "label-flippers", "stragglers"],
            run_dir=str(root / "run"),
            algorithms=ALGOS,
            scale="tiny",
            seed=0,
            store=str(root / "store.sqlite"),
            resume=True,
        )
        assert resumed.cells_run == 0
        assert resumed.cells_resumed == cold.cells_run
        assert resumed.fl_trainings == 0

    def test_manifest_records_scenario_labels(self, campaign):
        root, _ = campaign
        manifest = load_manifest(str(root / "run"))
        labels = {cell["task"] for cell in manifest["cells"].values()}
        assert any("free-rider" in label for label in labels)
        assert any("@clean" in label for label in labels)

    def test_robustness_table_renders(self, campaign):
        _, report = campaign
        text = robustness_table(report.rows)
        assert "free-rider" in text
        assert "strictly_last" in text

    def test_inline_scenario_definitions_work(self, tmp_path):
        inline = Scenario(
            name="inline-rider",
            n_clients=3,
            behaviors=(BehaviorSpec(kind="free_rider", clients=(2,)),),
        )
        report = run_robustness(
            [inline],
            run_dir=str(tmp_path / "run"),
            algorithms=("MC-Shapley",),
            scale="tiny",
            seed=0,
        )
        row = report.row("inline-rider", "MC-Shapley")
        assert row["adversaries"] == [2]
        assert row["strictly_last"]
