"""Scenario tasks through the declarative spec / pipeline / store layers."""

import pytest

from repro.experiments.pipeline import ExperimentPlan, run_plan
from repro.experiments.specs import TaskSpec, available_tasks
from repro.scenarios import BehaviorSpec, Scenario, get_scenario
from repro.store import SqliteUtilityStore


class TestScenarioTaskSpec:
    def test_kind_is_registered(self):
        assert "scenario" in available_tasks()

    def test_requires_a_scenario(self):
        with pytest.raises(ValueError, match="scenario tasks need"):
            TaskSpec(kind="scenario")

    def test_scenario_only_valid_for_scenario_kind(self):
        with pytest.raises(ValueError, match="only valid for scenario tasks"):
            TaskSpec(kind="adult", scenario="free-rider")

    def test_name_and_inline_dict_agree(self):
        by_name = TaskSpec(kind="scenario", scenario="free-rider", scale="tiny")
        inline = TaskSpec(
            kind="scenario",
            scenario=get_scenario("free-rider").to_dict(),
            scale="tiny",
        )
        assert by_name == inline
        assert by_name.fingerprint() == inline.fingerprint()

    def test_n_clients_pinned_to_layout_total(self):
        spec = TaskSpec(kind="scenario", scenario="sybil-attack", scale="tiny")
        assert spec.n_clients == 6  # 4 base + 2 clones

    def test_label_names_the_scenario(self):
        spec = TaskSpec(kind="scenario", scenario="free-rider", model="logistic")
        assert spec.label() == "scenario/free-rider/logistic/n=4"

    def test_round_trip_is_self_contained(self):
        """to_dict embeds the full definition: a manifest written today must
        rebuild next month without any registry state."""
        spec = TaskSpec(kind="scenario", scenario="free-rider", scale="tiny")
        payload = spec.to_dict()
        assert payload["scenario"]["behaviors"]  # full definition, not a name
        rebuilt = TaskSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_fingerprint_matches_builder_namespace(self, tmp_path):
        spec = TaskSpec(
            kind="scenario", scenario="free-rider", model="logistic", scale="tiny"
        )
        with SqliteUtilityStore(str(tmp_path / "store.sqlite")) as store:
            with spec.build(store) as utility:
                utility({0, 1})
                summary = store.summary()
        assert list(summary["namespaces"]) == [spec.fingerprint()]

    def test_behavior_difference_changes_fingerprint(self):
        light = Scenario(
            name="x",
            n_clients=4,
            behaviors=(
                BehaviorSpec(kind="label_flipper", clients=(3,), params={"fraction": 0.1}),
            ),
        )
        heavy = Scenario(
            name="x",
            n_clients=4,
            behaviors=(
                BehaviorSpec(kind="label_flipper", clients=(3,), params={"fraction": 0.9}),
            ),
        )
        a = TaskSpec(kind="scenario", scenario=light.to_dict(), scale="tiny")
        b = TaskSpec(kind="scenario", scenario=heavy.to_dict(), scale="tiny")
        assert a.fingerprint() != b.fingerprint()


class TestScenarioThroughPipeline:
    def test_plan_with_scenario_task_runs_and_reruns_free(self, tmp_path):
        spec = TaskSpec(
            kind="scenario", scenario="free-rider", model="logistic", scale="tiny"
        )
        plan = ExperimentPlan(tasks=(spec,), algorithms=("MC-Shapley",))
        store = str(tmp_path / "store.sqlite")
        first = run_plan(plan, str(tmp_path / "run1"), store=store)
        assert first.cells_run == 1
        assert first.fl_trainings > 0
        second = run_plan(plan, str(tmp_path / "run2"), store=store)
        assert second.fl_trainings == 0
