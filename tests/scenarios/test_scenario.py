"""Tests for Scenario specs, layouts, registry, fingerprints and building."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentScale
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    BehaviorSpec,
    Scenario,
    available_scenarios,
    build_scenario_task,
    get_scenario,
    register_scenario,
    resolve_scenario,
)

TINY = ExperimentScale.tiny()


def scenario_with(behaviors, n_clients=4, **kwargs):
    return Scenario(name="test", n_clients=n_clients, behaviors=behaviors, **kwargs)


class TestScenarioValidation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario dataset"):
            scenario_with((), dataset="imagenet")

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario partition"):
            scenario_with((), partition="quantum")

    def test_by_group_requires_grouped_dataset(self):
        with pytest.raises(ValueError, match="grouped dataset"):
            scenario_with((), partition="by-group", dataset="mnist-like")

    def test_partition_params_checked(self):
        with pytest.raises(ValueError, match="does not accept"):
            scenario_with((), partition="iid", partition_params={"alpha": 0.5})

    def test_behavior_targets_checked_against_population(self):
        with pytest.raises(ValueError, match="only 4 clients"):
            scenario_with((BehaviorSpec(kind="free_rider", clients=(7,)),))

    def test_later_behaviors_may_target_sybil_clones(self):
        scenario = scenario_with(
            (
                BehaviorSpec(kind="sybil", clients=(0,), params={"n_clones": 2}),
                BehaviorSpec(kind="free_rider", clients=(5,)),
            )
        )
        assert scenario.layout().n_clients == 6

    def test_duplicator_source_checked(self):
        with pytest.raises(ValueError, match="source client 9"):
            scenario_with(
                (BehaviorSpec(kind="duplicator", clients=(1,), params={"source": 9}),)
            )

    def test_duplicator_source_in_targets_rejected_at_spec_time(self):
        """Must fail at Scenario construction, not mid-pipeline at build time."""
        with pytest.raises(ValueError, match="own targets"):
            scenario_with(
                (BehaviorSpec(kind="duplicator", clients=(0, 3), params={"source": 0}),)
            )

    def test_behavior_dicts_are_coerced(self):
        scenario = scenario_with(({"kind": "free_rider", "clients": [3]},))
        assert scenario.behaviors[0] == BehaviorSpec(kind="free_rider", clients=(3,))


class TestLayout:
    def test_adversaries_and_roles(self):
        scenario = scenario_with(
            (
                BehaviorSpec(kind="free_rider", clients=(3,)),
                BehaviorSpec(kind="low_quality", clients=(1,)),
                BehaviorSpec(kind="straggler", clients=(2,), params={"dropout": 0.4}),
            )
        )
        layout = scenario.layout()
        assert layout.n_clients == 4
        assert layout.adversaries == (2, 3)  # low_quality is honest by default
        assert layout.roles == {1: "low_quality", 2: "straggler", 3: "free_rider"}
        assert layout.dropout == {2: 0.4}
        assert layout.dropout_vector() == [0.0, 0.0, 0.4, 0.0]

    def test_later_benign_behavior_cannot_launder_adversary_flag(self):
        """A low_quality pass over an already-poisoned client must not clear
        its adversary flag — the metrics would score against an empty cast."""
        scenario = scenario_with(
            (
                BehaviorSpec(kind="label_flipper", clients=(3,), params={"fraction": 1.0}),
                BehaviorSpec(kind="low_quality", clients=(3,)),
            )
        )
        assert scenario.layout().adversaries == (3,)

    def test_sybil_layout_counts_clones(self):
        scenario = scenario_with(
            (BehaviorSpec(kind="sybil", clients=(0, 1), params={"n_clones": 2}),)
        )
        layout = scenario.layout()
        assert layout.n_clients == 8
        assert set(layout.adversaries) == {0, 1, 4, 5, 6, 7}

    def test_clean_strips_behaviors_but_keeps_base(self):
        scenario = get_scenario("free-rider")
        clean = scenario.clean()
        assert clean.behaviors == ()
        assert clean.n_clients == scenario.n_clients
        assert clean.layout().adversaries == ()


class TestIdentityAndRegistry:
    def test_round_trip(self):
        scenario = scenario_with(
            (BehaviorSpec(kind="label_flipper", clients=(2,), params={"fraction": 0.5}),),
            partition="dirichlet",
            partition_params={"alpha": 0.3},
            description="demo",
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_fingerprint_ignores_name_and_description(self):
        a = scenario_with((BehaviorSpec(kind="free_rider", clients=(3,)),))
        b = Scenario(
            name="other",
            n_clients=4,
            behaviors=(BehaviorSpec(kind="free_rider", clients=(3,)),),
            description="completely different words",
        )
        assert a.fingerprint("mlp", TINY, 0) == b.fingerprint("mlp", TINY, 0)

    def test_adversarial_flag_does_not_change_fingerprint(self):
        """`adversarial` only affects scoring, never training — toggling it
        must not invalidate the persistent store."""
        default = scenario_with((BehaviorSpec(kind="low_quality", clients=(3,)),))
        flagged = scenario_with(
            (BehaviorSpec(kind="low_quality", clients=(3,), adversarial=True),)
        )
        assert default.fingerprint("mlp", TINY, 0) == flagged.fingerprint("mlp", TINY, 0)
        assert default.layout().adversaries != flagged.layout().adversaries

    def test_fingerprint_covers_behaviors_model_scale_seed(self):
        base = scenario_with(())
        flipped = scenario_with((BehaviorSpec(kind="free_rider", clients=(3,)),))
        keys = {
            base.fingerprint("mlp", TINY, 0),
            flipped.fingerprint("mlp", TINY, 0),
            base.fingerprint("logistic", TINY, 0),
            base.fingerprint("mlp", ExperimentScale.small(), 0),
            base.fingerprint("mlp", TINY, 1),
        }
        assert len(keys) == 5

    def test_registry_lookup_and_unknown_error(self):
        assert "free-rider" in available_scenarios()
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_register_refuses_silent_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("free-rider"))

    def test_resolve_accepts_name_object_and_dict(self):
        by_name = resolve_scenario("free-rider")
        assert resolve_scenario(by_name) is by_name
        assert resolve_scenario(by_name.to_dict()) == by_name
        with pytest.raises(TypeError):
            resolve_scenario(42)

    def test_builtins_are_valid_and_exactly_registered(self):
        assert sorted(s.name for s in BUILTIN_SCENARIOS) == available_scenarios()
        for scenario in BUILTIN_SCENARIOS:
            layout = scenario.layout()
            assert layout.n_clients <= 8  # exact Shapley must stay tractable


class TestBuildScenarioTask:
    def test_free_rider_population_and_info(self):
        utility, info = build_scenario_task("free-rider", scale=TINY, seed=0)
        with utility:
            assert utility.n_clients == 4
            assert info["adversaries"] == [3]
            assert info["base_clients"] == 4
            assert len(utility.trainer.client_datasets[3]) == 0

    def test_sybil_population_appends_clones(self):
        utility, info = build_scenario_task("sybil-attack", scale=TINY, seed=0)
        with utility:
            assert utility.n_clients == 6
            datasets = utility.trainer.client_datasets
            assert np.array_equal(datasets[4].features, datasets[0].features)
            assert np.array_equal(datasets[5].features, datasets[0].features)

    def test_straggler_dropout_reaches_trainer(self):
        utility, _ = build_scenario_task("stragglers", scale=TINY, seed=0)
        with utility:
            assert utility.trainer.client_dropout == [0.0, 0.0, 0.0, 0.75]

    def test_build_is_seed_deterministic(self):
        first, _ = build_scenario_task("label-flippers", scale=TINY, seed=3)
        second, _ = build_scenario_task("label-flippers", scale=TINY, seed=3)
        with first, second:
            coalition = frozenset({0, 1, 2})
            assert first(coalition) == second(coalition)

    def test_utility_unchanged_by_free_rider_membership(self):
        """U(S) == U(S ∪ {free rider}) exactly — the null-player axiom the
        robustness metrics rely on."""
        utility, info = build_scenario_task("free-rider", scale=TINY, seed=0)
        with utility:
            rider = info["adversaries"][0]
            assert utility({0, 1}) == utility({0, 1, rider})
