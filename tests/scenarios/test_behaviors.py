"""Tests for the client-behavior transforms of the scenario engine."""

import numpy as np
import pytest

from repro.datasets import make_classification_blobs, partition_iid
from repro.scenarios import BehaviorSpec, BEHAVIOR_REGISTRY, available_behaviors
from repro.utils.rng import fixed_rng


@pytest.fixture
def population():
    dataset = make_classification_blobs(120, n_features=4, n_classes=4, seed=0)
    return partition_iid(dataset, 4, seed=0)


def apply(spec: BehaviorSpec, datasets, seed=0):
    datasets = list(datasets)
    BEHAVIOR_REGISTRY[spec.kind].apply(datasets, spec, fixed_rng(seed))
    return datasets


class TestBehaviorSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown behavior kind"):
            BehaviorSpec(kind="telepath", clients=(0,))

    def test_needs_targets(self):
        with pytest.raises(ValueError, match="at least one target"):
            BehaviorSpec(kind="free_rider", clients=())

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            BehaviorSpec(kind="free_rider", clients=(1, 1))

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            BehaviorSpec(kind="label_flipper", clients=(0,), params={"severity": 2})

    def test_params_normalised_with_defaults(self):
        spec = BehaviorSpec(kind="label_flipper", clients=(0,))
        assert spec.params == {"fraction": 1.0}
        explicit = BehaviorSpec(
            kind="label_flipper", clients=(0,), params={"fraction": 1.0}
        )
        assert spec.identity_payload() == explicit.identity_payload()

    def test_params_coerced_to_canonical_types(self):
        """`"fraction": 1` (int) and `"fraction": 1.0` must fingerprint the
        same — canonical JSON renders 1 and 1.0 apart."""
        as_int = BehaviorSpec(kind="label_flipper", clients=(0,), params={"fraction": 1})
        as_float = BehaviorSpec(
            kind="label_flipper", clients=(0,), params={"fraction": 1.0}
        )
        assert as_int.identity_payload() == as_float.identity_payload()
        assert isinstance(as_int.params["fraction"], float)

    def test_fractional_value_for_integer_param_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            BehaviorSpec(kind="duplicator", clients=(1,), params={"source": 2.5})
        with pytest.raises(ValueError, match="must be an integer"):
            BehaviorSpec(kind="sybil", clients=(0,), params={"n_clones": 1.5})

    def test_round_trip(self):
        spec = BehaviorSpec(
            kind="straggler", clients=(1, 2), params={"dropout": 0.3}, adversarial=False
        )
        assert BehaviorSpec.from_dict(spec.to_dict()) == spec

    def test_adversarial_defaults_and_override(self):
        assert BehaviorSpec(kind="free_rider", clients=(0,)).is_adversarial
        assert not BehaviorSpec(kind="low_quality", clients=(0,)).is_adversarial
        assert BehaviorSpec(
            kind="low_quality", clients=(0,), adversarial=True
        ).is_adversarial

    def test_registry_lists_all_kinds(self):
        assert available_behaviors() == sorted(
            [
                "free_rider",
                "label_flipper",
                "feature_noiser",
                "duplicator",
                "sybil",
                "low_quality",
                "straggler",
            ]
        )


class TestDatasetTransforms:
    def test_free_rider_empties_targets_only(self, population):
        out = apply(BehaviorSpec(kind="free_rider", clients=(3,)), population)
        assert len(out[3]) == 0
        assert all(len(out[i]) == len(population[i]) for i in range(3))

    def test_label_flipper_flips_requested_fraction(self, population):
        out = apply(
            BehaviorSpec(kind="label_flipper", clients=(1,), params={"fraction": 1.0}),
            population,
        )
        assert np.all(out[1].targets != population[1].targets)
        assert np.array_equal(out[0].targets, population[0].targets)

    def test_feature_noiser_perturbs_features(self, population):
        out = apply(
            BehaviorSpec(kind="feature_noiser", clients=(2,), params={"scale": 1.0}),
            population,
        )
        assert not np.array_equal(out[2].features, population[2].features)
        assert np.array_equal(out[2].targets, population[2].targets)

    def test_duplicator_copies_source(self, population):
        out = apply(
            BehaviorSpec(kind="duplicator", clients=(3,), params={"source": 0}),
            population,
        )
        assert np.array_equal(out[3].features, out[0].features)

    def test_duplicator_source_cannot_be_target(self, population):
        spec = BehaviorSpec(kind="duplicator", clients=(0, 3), params={"source": 0})
        with pytest.raises(ValueError, match="own targets"):
            apply(spec, population)

    def test_sybil_appends_clones_in_order(self, population):
        out = apply(
            BehaviorSpec(kind="sybil", clients=(1,), params={"n_clones": 2}), population
        )
        assert len(out) == 6
        assert np.array_equal(out[4].features, out[1].features)
        assert np.array_equal(out[5].features, out[1].features)

    def test_low_quality_subsamples_without_replacement(self, population):
        out = apply(
            BehaviorSpec(kind="low_quality", clients=(0,), params={"fraction": 0.25}),
            population,
        )
        assert len(out[0]) == round(0.25 * len(population[0]))
        # Every surviving sample exists in the original shard.
        original = {tuple(row) for row in population[0].features}
        assert all(tuple(row) in original for row in out[0].features)

    def test_low_quality_skips_emptied_clients(self, population):
        """Composable after free_rider: an empty shard stays empty instead of
        crashing inside numpy's choice()."""
        emptied = apply(BehaviorSpec(kind="free_rider", clients=(0,)), population)
        out = apply(BehaviorSpec(kind="low_quality", clients=(0,)), emptied)
        assert len(out[0]) == 0

    def test_straggler_is_a_dataset_noop(self, population):
        out = apply(
            BehaviorSpec(kind="straggler", clients=(3,), params={"dropout": 0.9}),
            population,
        )
        assert np.array_equal(out[3].features, population[3].features)

    def test_out_of_range_target_rejected(self, population):
        with pytest.raises(ValueError, match="unknown clients"):
            apply(BehaviorSpec(kind="free_rider", clients=(9,)), population)

    def test_transforms_are_seed_deterministic(self, population):
        spec = BehaviorSpec(
            kind="label_flipper", clients=(0, 2), params={"fraction": 0.5}
        )
        first = apply(spec, population, seed=42)
        second = apply(spec, population, seed=42)
        for a, b in zip(first, second):
            assert np.array_equal(a.targets, b.targets)


class TestParamValidation:
    @pytest.mark.parametrize(
        "kind, params",
        [
            ("label_flipper", {"fraction": 1.5}),
            ("feature_noiser", {"scale": -1.0}),
            ("duplicator", {"source": -1}),
            ("sybil", {"n_clones": 0}),
            ("low_quality", {"fraction": 0.0}),
            ("low_quality", {"fraction": 1.0}),
            ("straggler", {"dropout": 0.0}),
            ("straggler", {"dropout": 1.5}),
        ],
    )
    def test_bad_params_rejected(self, kind, params):
        with pytest.raises(ValueError):
            BehaviorSpec(kind=kind, clients=(0,), params=params)
