"""Shared fixtures for the test suite.

Most algorithm tests run against cheap tabular utility oracles (no FL
training); a handful of integration tests use a tiny real federation built
from the synthetic datasets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import theory
from repro.datasets import (
    make_classification_blobs,
    partition_different_sizes,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig, TabularUtility
from repro.models import LogisticRegressionModel


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def table1_utility():
    """The paper's Table I three-client example (exact values 0.22, 0.32, 0.32)."""
    table = {
        frozenset(): 0.10,
        frozenset({0}): 0.50,
        frozenset({1}): 0.70,
        frozenset({2}): 0.60,
        frozenset({0, 1}): 0.80,
        frozenset({0, 2}): 0.90,
        frozenset({1, 2}): 0.90,
        frozenset({0, 1, 2}): 0.96,
    }
    return TabularUtility(3, table)


@pytest.fixture
def table1_exact_values():
    """Hand-computed exact Shapley values of the Table I example."""
    return np.array([0.22, 0.32, 0.32])


from tests.helpers import monotone_game


@pytest.fixture
def monotone_game_5():
    return monotone_game(5, seed=1)


@pytest.fixture
def monotone_game_8():
    return monotone_game(8, seed=2)


@pytest.fixture
def linear_theory_utility():
    """Closed-form utility table from the Donahue–Kleinberg model (6 clients)."""
    table = theory.linear_utility_table(
        n_clients=6, samples_per_client=50, n_features=5, noise_mean=1.0, initial_mse=10.0
    )
    return TabularUtility(6, table)


@pytest.fixture(scope="session")
def tiny_fl_utility():
    """A real (but tiny) FL federation: 4 clients, logistic regression model."""
    pooled = make_classification_blobs(
        n_samples=160,
        n_features=6,
        n_classes=3,
        cluster_std=2.0,
        class_separation=2.0,
        seed=5,
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=5)
    clients = partition_different_sizes(train, 4, seed=5)
    return CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=lambda: LogisticRegressionModel(n_features=6, n_classes=3, epochs=3),
        config=FLConfig(rounds=2, local_epochs=1),
        seed=5,
    )
