"""Tests for the Dataset container and train/test splitting."""

import numpy as np
import pytest

from repro.datasets import Dataset, train_test_split


def make_dataset(n=20, f=4, classes=3, with_groups=False, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        features=rng.normal(size=(n, f)),
        targets=rng.integers(0, classes, size=n),
        num_classes=classes,
        name="toy",
        group_ids=rng.integers(0, 4, size=n) if with_groups else None,
    )


class TestDatasetBasics:
    def test_length_and_counts(self):
        dataset = make_dataset(n=15, f=6)
        assert len(dataset) == 15
        assert dataset.n_samples == 15
        assert dataset.n_features == 6

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_mismatched_group_ids_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(3), group_ids=np.zeros(4))

    def test_is_classification(self):
        assert make_dataset().is_classification
        regression = Dataset(np.zeros((3, 2)), np.zeros(3))
        assert not regression.is_classification

    def test_flat_features_for_images(self):
        images = Dataset(np.zeros((5, 4, 4)), np.zeros(5, dtype=int), num_classes=2)
        assert images.n_features == 16
        assert images.flat_features.shape == (5, 16)

    def test_repr_contains_name(self):
        assert "toy" in repr(make_dataset())


class TestSubsetAndCopy:
    def test_subset_selects_rows(self):
        dataset = make_dataset(with_groups=True)
        subset = dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert np.array_equal(subset.features, dataset.features[[0, 2, 4]])
        assert np.array_equal(subset.group_ids, dataset.group_ids[[0, 2, 4]])

    def test_take(self):
        dataset = make_dataset(n=10)
        assert len(dataset.take(3)) == 3
        assert len(dataset.take(100)) == 10

    def test_shuffled_preserves_multiset(self):
        dataset = make_dataset()
        shuffled = dataset.shuffled(seed=1)
        assert sorted(shuffled.targets.tolist()) == sorted(dataset.targets.tolist())

    def test_copy_is_independent(self):
        dataset = make_dataset()
        clone = dataset.copy()
        clone.features[0, 0] = 999.0
        assert dataset.features[0, 0] != 999.0

    def test_with_targets_validates_length(self):
        dataset = make_dataset(n=5)
        replaced = dataset.with_targets(np.ones(5, dtype=int))
        assert replaced.targets.sum() == 5
        with pytest.raises(ValueError):
            dataset.with_targets(np.ones(4))

    def test_with_features_validates_length(self):
        dataset = make_dataset(n=5, f=2)
        replaced = dataset.with_features(np.zeros((5, 2)))
        assert replaced.features.sum() == 0.0
        with pytest.raises(ValueError):
            dataset.with_features(np.zeros((4, 2)))


class TestLabelDistribution:
    def test_distribution_sums_to_one(self):
        dataset = make_dataset(n=50, classes=4)
        distribution = dataset.label_distribution()
        assert distribution.shape == (4,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_distribution_requires_classification(self):
        regression = Dataset(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            regression.label_distribution()

    def test_empty_dataset_distribution(self):
        dataset = make_dataset(n=10, classes=3)
        empty = Dataset.empty_like(dataset)
        assert empty.label_distribution().sum() == 0.0


class TestConcatenate:
    def test_concatenate_stacks_samples(self):
        a = make_dataset(n=5, seed=1)
        b = make_dataset(n=7, seed=2)
        union = Dataset.concatenate([a, b])
        assert len(union) == 12

    def test_concatenate_empty_list_raises(self):
        with pytest.raises(ValueError):
            Dataset.concatenate([])

    def test_concatenate_mixed_classes_raises(self):
        a = make_dataset(classes=3)
        b = Dataset(np.zeros((3, 4)), np.zeros(3, dtype=int), num_classes=2)
        with pytest.raises(ValueError):
            Dataset.concatenate([a, b])

    def test_concatenate_group_ids_kept_when_all_present(self):
        a = make_dataset(n=4, with_groups=True, seed=1)
        b = make_dataset(n=6, with_groups=True, seed=2)
        union = Dataset.concatenate([a, b])
        assert union.group_ids is not None
        assert len(union.group_ids) == 10

    def test_empty_like(self):
        reference = make_dataset(n=9, f=4)
        empty = Dataset.empty_like(reference)
        assert len(empty) == 0
        assert empty.features.shape[1:] == reference.features.shape[1:]
        assert empty.num_classes == reference.num_classes


class TestTrainTestSplit:
    def test_split_sizes(self):
        dataset = make_dataset(n=100)
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80

    def test_split_is_disjoint_and_complete(self):
        dataset = make_dataset(n=40)
        dataset.features[:, 0] = np.arange(40)  # unique marker per row
        train, test = train_test_split(dataset, test_fraction=0.25, seed=3)
        markers = np.concatenate([train.features[:, 0], test.features[:, 0]])
        assert sorted(markers.tolist()) == list(range(40))

    def test_invalid_fraction_raises(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.0)

    def test_split_deterministic_with_seed(self):
        dataset = make_dataset(n=30)
        train_a, _ = train_test_split(dataset, seed=9)
        train_b, _ = train_test_split(dataset, seed=9)
        assert np.array_equal(train_a.features, train_b.features)
