"""Tests for partitioners and noise injectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    add_feature_noise,
    flip_labels,
    make_adult_like,
    make_classification_blobs,
    make_femnist_like,
    partition_by_group,
    partition_different_sizes,
    partition_dirichlet,
    partition_iid,
    partition_label_skew,
)


@pytest.fixture
def blob_dataset():
    return make_classification_blobs(200, n_features=5, n_classes=4, seed=0)


def total_samples(parts):
    return sum(len(p) for p in parts)


class TestPartitionIID:
    def test_covers_all_samples(self, blob_dataset):
        parts = partition_iid(blob_dataset, 5, seed=0)
        assert len(parts) == 5
        assert total_samples(parts) == len(blob_dataset)

    def test_roughly_equal_sizes(self, blob_dataset):
        parts = partition_iid(blob_dataset, 7, seed=0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_names_include_client_index(self, blob_dataset):
        parts = partition_iid(blob_dataset, 3, seed=0)
        assert "client-2" in parts[2].name

    def test_invalid_client_count_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_iid(blob_dataset, 0)


class TestPartitionDifferentSizes:
    def test_default_ratios_are_increasing(self, blob_dataset):
        parts = partition_different_sizes(blob_dataset, 4, seed=0)
        sizes = [len(p) for p in parts]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_custom_ratios(self, blob_dataset):
        parts = partition_different_sizes(blob_dataset, 2, ratios=[1, 3], seed=0)
        assert len(parts[1]) > 2 * len(parts[0])

    def test_ratio_length_mismatch_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_different_sizes(blob_dataset, 3, ratios=[1, 2])

    def test_non_positive_ratio_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_different_sizes(blob_dataset, 2, ratios=[0, 1])

    def test_covers_all_samples(self, blob_dataset):
        parts = partition_different_sizes(blob_dataset, 6, seed=1)
        assert total_samples(parts) == len(blob_dataset)


class TestPartitionLabelSkew:
    def test_dominant_class_is_overrepresented(self, blob_dataset):
        parts = partition_label_skew(blob_dataset, 4, dominant_fraction=0.8, seed=0)
        for client, part in enumerate(parts):
            distribution = part.label_distribution()
            dominant = client % blob_dataset.num_classes
            assert distribution[dominant] >= 0.5

    def test_requires_classification(self):
        from repro.datasets import make_linear_regression

        with pytest.raises(ValueError):
            partition_label_skew(make_linear_regression(50, seed=0), 3)

    def test_invalid_fraction_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_label_skew(blob_dataset, 3, dominant_fraction=1.5)

    def test_no_sample_duplication(self, blob_dataset):
        marked = blob_dataset.copy()
        marked.features[:, 0] = np.arange(len(marked))
        parts = partition_label_skew(marked, 4, seed=0)
        markers = np.concatenate([p.features[:, 0] for p in parts])
        assert len(np.unique(markers)) == len(markers)


class TestPartitionDirichlet:
    def test_covers_all_samples(self, blob_dataset):
        parts = partition_dirichlet(blob_dataset, 5, alpha=0.5, seed=0)
        assert total_samples(parts) == len(blob_dataset)

    def test_unsatisfiable_min_samples_raises_with_context(self, blob_dataset):
        """50 failed retries must raise a ValueError naming alpha/n_clients,
        not silently return an under-filled split."""
        with pytest.raises(ValueError, match=r"alpha=0\.5.*n_clients=5"):
            partition_dirichlet(
                blob_dataset, 5, alpha=0.5, seed=0,
                min_samples_per_client=len(blob_dataset),
            )

    def test_more_clients_than_samples_raises(self):
        tiny = make_classification_blobs(4, n_features=3, n_classes=2, seed=0)
        with pytest.raises(ValueError, match="n_clients=8"):
            partition_dirichlet(tiny, 8, alpha=0.5, seed=0, min_samples_per_client=1)

    def test_every_client_nonempty(self, blob_dataset):
        parts = partition_dirichlet(blob_dataset, 5, alpha=0.3, seed=1)
        assert all(len(p) >= 1 for p in parts)

    def test_small_alpha_is_more_skewed(self, blob_dataset):
        def skew(parts):
            distributions = np.stack([p.label_distribution() for p in parts if len(p) > 0])
            return float(distributions.std(axis=0).mean())

        skewed = partition_dirichlet(blob_dataset, 4, alpha=0.1, seed=2)
        uniform = partition_dirichlet(blob_dataset, 4, alpha=100.0, seed=2)
        assert skew(skewed) > skew(uniform)

    def test_invalid_alpha_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(blob_dataset, 3, alpha=0.0)


class TestPartitionByGroup:
    def test_groups_not_split_across_clients(self):
        dataset = make_femnist_like(150, n_writers=8, seed=0)
        parts = partition_by_group(dataset, 4, seed=0)
        seen: dict[int, int] = {}
        for client, part in enumerate(parts):
            for writer in np.unique(part.group_ids):
                assert writer not in seen, "writer assigned to two clients"
                seen[int(writer)] = client

    def test_requires_group_ids(self, blob_dataset):
        with pytest.raises(ValueError):
            partition_by_group(blob_dataset, 3)

    def test_too_many_clients_raises(self):
        dataset = make_adult_like(100, n_occupations=3, seed=0)
        with pytest.raises(ValueError):
            partition_by_group(dataset, 10)

    def test_covers_all_samples(self):
        dataset = make_adult_like(200, n_occupations=12, seed=0)
        parts = partition_by_group(dataset, 5, seed=0)
        assert total_samples(parts) == len(dataset)


class TestPartitionerContracts:
    """Shared contracts: seed determinism and sample conservation."""

    PARTITIONERS = {
        "iid": lambda d, seed: partition_iid(d, 5, seed=seed),
        "different-sizes": lambda d, seed: partition_different_sizes(d, 5, seed=seed),
        "label-skew": lambda d, seed: partition_label_skew(d, 4, seed=seed),
        "dirichlet": lambda d, seed: partition_dirichlet(d, 4, alpha=1.0, seed=seed),
    }

    @pytest.fixture
    def marked_dataset(self):
        dataset = make_classification_blobs(200, n_features=5, n_classes=4, seed=0)
        dataset.features[:, 0] = np.arange(len(dataset))
        return dataset

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_same_seed_same_split(self, marked_dataset, name):
        split = self.PARTITIONERS[name]
        first = split(marked_dataset, 123)
        second = split(marked_dataset, 123)
        for a, b in zip(first, second):
            assert np.array_equal(a.features[:, 0], b.features[:, 0])

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_different_seed_different_split(self, marked_dataset, name):
        split = self.PARTITIONERS[name]
        first = split(marked_dataset, 1)
        second = split(marked_dataset, 2)
        assert any(
            not np.array_equal(a.features[:, 0], b.features[:, 0])
            for a, b in zip(first, second)
        )

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_no_sample_duplicated(self, marked_dataset, name):
        parts = self.PARTITIONERS[name](marked_dataset, 7)
        markers = np.concatenate([p.features[:, 0] for p in parts])
        assert len(np.unique(markers)) == len(markers)

    @pytest.mark.parametrize("name", ["iid", "different-sizes", "dirichlet"])
    def test_no_sample_dropped(self, marked_dataset, name):
        """Recipes that promise full coverage must not drop an index."""
        parts = self.PARTITIONERS[name](marked_dataset, 7)
        markers = np.concatenate([p.features[:, 0] for p in parts])
        assert sorted(markers.tolist()) == list(range(len(marked_dataset)))

    def test_by_group_conserves_and_is_deterministic(self):
        dataset = make_femnist_like(180, n_writers=9, seed=0)
        first = partition_by_group(dataset, 4, seed=5)
        second = partition_by_group(dataset, 4, seed=5)
        assert total_samples(first) == len(dataset)
        for a, b in zip(first, second):
            assert np.array_equal(a.group_ids, b.group_ids)

    def test_label_skew_dominant_pool_underfill_breaks_cleanly(self):
        """When a dominant class runs out of samples the client fills up from
        the other classes — sizes stay exact and nothing is duplicated."""
        features = np.zeros((56, 3))
        features[:, 0] = np.arange(56)
        targets = np.concatenate([np.zeros(50), np.ones(2), np.full(2, 2), np.full(2, 3)])
        from repro.datasets import Dataset

        dataset = Dataset(features, targets.astype(int), num_classes=4)
        parts = partition_label_skew(dataset, 4, dominant_fraction=0.8, seed=0)
        per_client = len(dataset) // 4
        assert [len(p) for p in parts] == [per_client] * 4
        markers = np.concatenate([p.features[:, 0] for p in parts])
        assert len(np.unique(markers)) == len(markers)


class TestLabelNoise:
    def test_flip_fraction_respected(self, blob_dataset):
        noisy = flip_labels(blob_dataset, 0.3, seed=0)
        changed = np.mean(noisy.targets != blob_dataset.targets)
        assert changed == pytest.approx(0.3, abs=0.01)

    def test_zero_fraction_is_identity(self, blob_dataset):
        noisy = flip_labels(blob_dataset, 0.0, seed=0)
        assert np.array_equal(noisy.targets, blob_dataset.targets)

    def test_flipped_labels_stay_in_range(self, blob_dataset):
        noisy = flip_labels(blob_dataset, 1.0, seed=0)
        assert set(np.unique(noisy.targets)).issubset(set(range(blob_dataset.num_classes)))
        # Flipping always moves to a *different* class.
        assert np.all(noisy.targets != blob_dataset.targets)

    def test_original_unmodified(self, blob_dataset):
        before = blob_dataset.targets.copy()
        flip_labels(blob_dataset, 0.5, seed=0)
        assert np.array_equal(blob_dataset.targets, before)

    def test_regression_dataset_raises(self):
        from repro.datasets import make_linear_regression

        with pytest.raises(ValueError):
            flip_labels(make_linear_regression(20, seed=0), 0.1)

    def test_invalid_fraction_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            flip_labels(blob_dataset, 1.5)

    @pytest.mark.parametrize("fraction", [0.1, 0.5, 1.0])
    def test_vectorized_flip_matches_scalar_loop_seed_for_seed(
        self, blob_dataset, fraction
    ):
        """The vectorized offset draw must consume the RNG stream exactly like
        the original per-sample loop, so historical seeds keep their outputs."""

        def reference(dataset, flip_fraction, seed):
            rng = np.random.default_rng(seed)
            targets = dataset.targets.astype(int).copy()
            n_flip = int(round(flip_fraction * len(dataset)))
            flip_indices = rng.choice(len(dataset), size=n_flip, replace=False)
            n_classes = dataset.num_classes
            for idx in flip_indices:
                offset = int(rng.integers(1, n_classes))
                targets[idx] = (targets[idx] + offset) % n_classes
            return targets

        for seed in (0, 7, 1234):
            noisy = flip_labels(blob_dataset, fraction, seed=seed)
            assert np.array_equal(noisy.targets, reference(blob_dataset, fraction, seed))


class TestFeatureNoise:
    def test_noise_scale_zero_is_identity(self, blob_dataset):
        noisy = add_feature_noise(blob_dataset, 0.0, seed=0)
        assert np.array_equal(noisy.features, blob_dataset.features)

    def test_noise_changes_features(self, blob_dataset):
        noisy = add_feature_noise(blob_dataset, 0.2, seed=0)
        assert not np.array_equal(noisy.features, blob_dataset.features)
        deviation = np.std(noisy.features - blob_dataset.features)
        assert deviation == pytest.approx(0.2, rel=0.15)

    def test_targets_untouched(self, blob_dataset):
        noisy = add_feature_noise(blob_dataset, 0.5, seed=0)
        assert np.array_equal(noisy.targets, blob_dataset.targets)

    def test_negative_scale_raises(self, blob_dataset):
        with pytest.raises(ValueError):
            add_feature_noise(blob_dataset, -0.1)


@settings(max_examples=20, deadline=None)
@given(
    n_clients=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_iid_partition_property(n_clients, seed):
    """IID partitions always cover the dataset exactly once."""
    dataset = make_classification_blobs(80, n_features=3, n_classes=3, seed=seed)
    marked = dataset.copy()
    marked.features[:, 0] = np.arange(len(marked))
    parts = partition_iid(marked, n_clients, seed=seed)
    markers = np.concatenate([p.features[:, 0] for p in parts])
    assert sorted(markers.tolist()) == list(range(len(dataset)))


@settings(max_examples=20, deadline=None)
@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_flip_labels_property(fraction, seed):
    """Label flipping changes close to the requested fraction of labels."""
    dataset = make_classification_blobs(100, n_classes=5, seed=seed)
    noisy = flip_labels(dataset, fraction, seed=seed)
    changed = int(np.sum(noisy.targets != dataset.targets))
    assert changed == int(round(fraction * len(dataset)))
