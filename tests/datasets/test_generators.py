"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    make_adult_like,
    make_classification_blobs,
    make_femnist_like,
    make_linear_regression,
    make_mnist_like,
    make_sent140_like,
)
from repro.models import LogisticRegressionModel
from repro.datasets.base import Dataset


class TestLinearRegression:
    def test_shapes(self):
        dataset = make_linear_regression(50, n_features=4, seed=0)
        assert dataset.features.shape == (50, 4)
        assert dataset.targets.shape == (50,)
        assert not dataset.is_classification

    def test_respects_given_coefficients(self):
        coefficients = np.array([1.0, -2.0, 0.5])
        dataset = make_linear_regression(
            200, n_features=3, coefficients=coefficients, noise_std=0.0, seed=1
        )
        recovered, *_ = np.linalg.lstsq(dataset.features, dataset.targets, rcond=None)
        assert np.allclose(recovered, coefficients, atol=1e-8)

    def test_wrong_coefficient_shape_raises(self):
        with pytest.raises(ValueError):
            make_linear_regression(10, n_features=3, coefficients=np.ones(4))

    def test_noise_increases_residual(self):
        clean = make_linear_regression(300, noise_std=0.0, seed=2)
        noisy = make_linear_regression(300, noise_std=1.0, seed=2)
        assert noisy.targets.var() > clean.targets.var() * 0.99

    def test_deterministic_with_seed(self):
        a = make_linear_regression(20, seed=5)
        b = make_linear_regression(20, seed=5)
        assert np.array_equal(a.features, b.features)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            make_linear_regression(0)
        with pytest.raises(ValueError):
            make_linear_regression(10, n_features=0)


class TestBlobs:
    def test_shapes_and_classes(self):
        dataset = make_classification_blobs(60, n_features=5, n_classes=4, seed=0)
        assert dataset.features.shape == (60, 5)
        assert dataset.num_classes == 4
        assert set(np.unique(dataset.targets)).issubset(set(range(4)))

    def test_separated_blobs_are_learnable(self):
        dataset = make_classification_blobs(
            300, n_features=6, n_classes=3, class_separation=5.0, cluster_std=0.5, seed=1
        )
        model = LogisticRegressionModel(n_features=6, n_classes=3, epochs=20)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.9


class TestMnistLike:
    def test_shapes(self):
        dataset = make_mnist_like(40, image_size=8, seed=0)
        assert dataset.features.shape == (40, 8, 8)
        assert dataset.num_classes == 10

    def test_all_classes_can_appear(self):
        dataset = make_mnist_like(500, seed=1)
        assert len(np.unique(dataset.targets)) == 10

    def test_task_is_learnable(self):
        dataset = make_mnist_like(400, image_size=8, pixel_noise=0.15, seed=2)
        model = LogisticRegressionModel(n_features=64, n_classes=10, epochs=20)
        model.fit(dataset, seed=0)
        # Training accuracy well above chance (10%) shows class structure exists.
        assert model.evaluate(dataset) > 0.5

    def test_different_seeds_share_task_structure(self):
        a = make_mnist_like(100, seed=1)
        b = make_mnist_like(100, seed=2)
        model = LogisticRegressionModel(n_features=64, n_classes=10, epochs=25)
        model.fit(a, seed=0)
        # A model trained on one draw transfers to another draw of the same task.
        assert model.evaluate(b) > 0.4


class TestFemnistLike:
    def test_has_writer_groups(self):
        dataset = make_femnist_like(80, n_writers=6, seed=0)
        assert dataset.group_ids is not None
        assert set(np.unique(dataset.group_ids)).issubset(set(range(6)))

    def test_style_strength_zero_matches_templates_more_closely(self):
        plain = make_femnist_like(200, n_writers=5, style_strength=0.0, seed=3)
        styled = make_femnist_like(200, n_writers=5, style_strength=1.5, seed=3)
        # Stronger styles increase overall feature variance across writers.
        assert styled.features.var() > plain.features.var()

    def test_shapes(self):
        dataset = make_femnist_like(30, image_size=10, seed=0)
        assert dataset.features.shape == (30, 10, 10)


class TestAdultLike:
    def test_shapes_and_binary_target(self):
        dataset = make_adult_like(120, seed=0)
        assert dataset.num_classes == 2
        assert set(np.unique(dataset.targets)).issubset({0, 1})
        assert dataset.group_ids is not None

    def test_occupation_groups_within_range(self):
        dataset = make_adult_like(200, n_occupations=7, seed=1)
        assert dataset.group_ids.max() < 7

    def test_task_is_learnable(self):
        dataset = make_adult_like(600, seed=2)
        model = LogisticRegressionModel(
            n_features=dataset.n_features, n_classes=2, epochs=20
        )
        model.fit(dataset, seed=0)
        majority = max(dataset.label_distribution())
        assert model.evaluate(dataset) > majority

    def test_both_classes_present(self):
        dataset = make_adult_like(500, seed=3)
        assert len(np.unique(dataset.targets)) == 2


class TestSent140Like:
    def test_counts_are_non_negative_integers(self):
        dataset = make_sent140_like(50, seed=0)
        assert np.all(dataset.features >= 0)
        assert np.allclose(dataset.features, np.round(dataset.features))

    def test_document_length_respected(self):
        dataset = make_sent140_like(30, document_length=15, seed=1)
        assert np.allclose(dataset.features.sum(axis=1), 15)

    def test_has_user_groups_and_binary_labels(self):
        dataset = make_sent140_like(80, n_users=9, seed=2)
        assert dataset.group_ids.max() < 9
        assert set(np.unique(dataset.targets)).issubset({0, 1})

    def test_sentiment_signal_is_learnable(self):
        dataset = make_sent140_like(500, seed=3)
        model = LogisticRegressionModel(
            n_features=dataset.n_features, n_classes=2, epochs=20
        )
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.7


class TestGeneratorValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: make_mnist_like(0),
            lambda: make_femnist_like(0),
            lambda: make_adult_like(0),
            lambda: make_sent140_like(0),
            lambda: make_classification_blobs(0),
        ],
    )
    def test_zero_samples_raise(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_generators_return_dataset_instances(self):
        for dataset in (
            make_mnist_like(10, seed=0),
            make_femnist_like(10, seed=0),
            make_adult_like(10, seed=0),
            make_sent140_like(10, seed=0),
            make_linear_regression(10, seed=0),
        ):
            assert isinstance(dataset, Dataset)
