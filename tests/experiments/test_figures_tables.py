"""Smoke tests for the table/figure regenerators at tiny scale.

Each experiment is exercised with the smallest meaningful configuration so the
whole module stays fast; the benchmark suite runs the realistic versions.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, figures, tables
from repro.experiments.tables import render_table

TINY = ExperimentScale.tiny()


class TestTables:
    def test_table4_rows_structure(self):
        rows = tables.table4(scale=TINY, client_counts=(3,), models=("mlp",))
        algorithms = {row["algorithm"] for row in rows}
        assert "IPSS" in algorithms
        assert "MC-Shapley" in algorithms
        assert all(row["dataset"] == "femnist-like" for row in rows)
        approx = [r for r in rows if r["algorithm"] != "MC-Shapley"]
        assert all(r["error_l2"] is not None for r in approx)

    def test_table5_xgb_excludes_gradient_baselines(self):
        rows = tables.table5(scale=TINY, client_counts=(3,), models=("xgb",))
        algorithms = {row["algorithm"] for row in rows}
        assert "IPSS" in algorithms
        assert "OR" not in algorithms
        assert "GTG-Shapley" not in algorithms

    def test_render_table_text(self):
        rows = tables.table4(scale=TINY, client_counts=(3,), models=("mlp",))
        text = render_table(rows, "Table IV (tiny)")
        assert "Table IV" in text
        assert "IPSS" in text


class TestFigures:
    def test_figure1b_points(self):
        rows = figures.figure1b(scale=TINY, n_clients=4, model="logistic", seed=0)
        assert all("time_s" in row and "error_l2" in row for row in rows)
        assert any(row["algorithm"] == "IPSS" for row in rows)

    def test_figure4_error_decreases_overall(self):
        report = figures.figure4(scale=TINY, n_clients=5, model="logistic", seed=0)
        assert report["k"] == [1, 2, 3, 4, 5]
        assert report["relative_error"][-1] < 1e-6  # K = n recovers exact MC-SV
        assert report["evaluations"] == sorted(report["evaluations"])

    def test_figure6_covers_requested_setups(self):
        rows = figures.figure6(
            scale=TINY,
            setups=("same-size-same-distribution",),
            models=("logistic",),
            n_clients=3,
            seed=0,
        )
        assert {row["setup"] for row in rows} == {"same-size-same-distribution"}
        assert any(row["algorithm"] == "IPSS" for row in rows)

    def test_figure7_series_shapes(self):
        report = figures.figure7(
            scale=TINY, n_clients=4, model="logistic", gammas=(4, 8), repetitions=2, seed=0
        )
        assert report["gamma"] == [4, 8]
        for series in report["series"].values():
            assert len(series) == 2
            assert all(np.isfinite(series))

    def test_figure8_rows(self):
        rows = figures.figure8(
            scale=TINY, n_clients=4, model="logistic", gammas=(4, 8), seed=0
        )
        assert len(rows) == 8  # 4 algorithms x 2 gammas
        assert all(row["error_l2"] >= 0 for row in rows)

    def test_figure9_fairness_proxies(self):
        rows = figures.figure9(
            scale=TINY, client_counts=(8,), model="logistic", seed=0
        )
        assert all(row["n"] == 8 for row in rows)
        assert all(np.isfinite(row["fairness_error"]) for row in rows)
        assert {row["algorithm"] for row in rows} == {
            "IPSS",
            "Extended-TMC",
            "Extended-GTB",
            "CC-Shapley",
        }

    def test_figure10_variance_fields(self):
        rows = figures.figure10(
            scale=TINY,
            client_counts=(4,),
            gammas=(4, 8),
            repetitions=4,
            contribution_samples=40,
            seed=0,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["mc_contribution_variance"] >= 0
            assert row["cc_contribution_variance"] >= 0
