"""Tests for the comparison runner and the text reporting helpers."""

import numpy as np
import pytest

from repro.core import IPSS, MCShapley
from repro.experiments import build_algorithm_suite, run_comparison
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import AlgorithmComparison, ComparisonRow

from tests.helpers import monotone_game


class TestBuildAlgorithmSuite:
    def test_full_suite_contains_ipss_and_exact(self):
        suite = build_algorithm_suite(5, total_rounds=10)
        names = [type(a).__name__ for a in suite]
        assert "IPSS" in names
        assert "MCShapley" in names
        assert "PermShapley" not in names  # disabled by default

    def test_gradient_free_suite(self):
        suite = build_algorithm_suite(5, include_gradient=False)
        names = [type(a).__name__ for a in suite]
        assert "ORBaseline" not in names
        assert "DIGFL" not in names

    def test_sampling_budget_defaults_to_paper_table3(self):
        suite = build_algorithm_suite(10)
        ipss = [a for a in suite if type(a).__name__ == "IPSS"][0]
        assert ipss.total_rounds == 32

    def test_include_perm(self):
        suite = build_algorithm_suite(3, include_perm=True)
        assert any(type(a).__name__ == "PermShapley" for a in suite)


class TestRunComparison:
    def test_errors_computed_against_exact(self):
        game = monotone_game(5, seed=0)
        suite = build_algorithm_suite(5, total_rounds=12, include_gradient=False)
        comparison = run_comparison(game, suite, n_clients=5)
        exact_rows = [r for r in comparison.rows if r.is_exact]
        approx_rows = [r for r in comparison.rows if not r.is_exact]
        assert exact_rows and approx_rows
        assert all(r.relative_error is None for r in exact_rows)
        assert all(r.relative_error is not None for r in approx_rows)

    def test_gradient_algorithms_skipped_on_tabular_oracle(self):
        game = monotone_game(4, seed=1)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=True)
        comparison = run_comparison(game, suite, n_clients=4)
        names = [r.algorithm for r in comparison.rows]
        assert "OR" not in names  # inapplicable -> skipped, like '\\' in Table V
        assert "IPSS" in names

    def test_skipped_algorithms_are_recorded_with_reason(self):
        """Table V's "\\" cells must be attributable: every skip keeps the
        algorithm name, the exception type and a human-readable reason."""
        game = monotone_game(4, seed=1)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=True)
        comparison = run_comparison(game, suite, n_clients=4)
        skipped_names = [s.algorithm for s in comparison.skipped]
        assert "OR" in skipped_names
        for skip in comparison.skipped:
            assert skip.error_type in ("TypeError", "ValueError")
            # All skips on a tabular oracle are gradient-based methods, and
            # the reason must actually explain the inapplicability.
            assert "gradient" in skip.reason
        assert {"algorithm", "reason", "error_type"} <= set(
            comparison.skipped[0].to_dict()
        )

    def test_no_skips_recorded_on_clean_run(self):
        game = monotone_game(4, seed=2)
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4)
        assert comparison.skipped == []

    def test_skip_failures_false_still_raises(self):
        game = monotone_game(4, seed=1)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=True)
        with pytest.raises(TypeError):
            run_comparison(game, suite, n_clients=4, skip_failures=False)

    def test_n_workers_restored_on_callers_oracle(self):
        """run_comparison must not permanently reconfigure the oracle it was
        handed: later serial timings by the caller would silently run on a
        worker pool otherwise."""

        class ConfigurableOracle:
            def __init__(self, game):
                self._game = game
                self.n_clients = game.n_clients
                self.n_workers = 1

            def __call__(self, coalition):
                return self._game(coalition)

            def set_n_workers(self, n_workers):
                # Deliberately the single-argument form: run_comparison must
                # not assume the two-argument (n_workers, executor) signature
                # for oracles that expose no `executor` attribute.
                self.n_workers = n_workers

        oracle = ConfigurableOracle(monotone_game(4, seed=8))
        run_comparison(oracle, [IPSS(total_rounds=8, seed=0)], 4, n_workers=6)
        assert oracle.n_workers == 1

    def test_executor_backend_restored_on_callers_oracle(self):
        """The backend is restored too, not just the worker count: a serial
        oracle must not come back holding a (one-worker) thread pool."""
        from repro.parallel import BatchUtilityOracle, SerialExecutor

        oracle = BatchUtilityOracle(monotone_game(4, seed=8), n_clients=4)
        assert type(oracle.executor) is SerialExecutor
        run_comparison(oracle, [IPSS(total_rounds=8, seed=0)], 4, n_workers=6)
        assert oracle.n_workers == 1
        assert type(oracle.executor) is SerialExecutor

    def test_evaluation_counts_independent_of_n_workers(self):
        """Plain callables are wrapped (memoised) for any explicit n_workers,
        so the reported cost model does not depend on the concurrency level."""

        def rows_with(n_workers):
            comparison = run_comparison(
                monotone_game(4, seed=9).utility,
                [IPSS(total_rounds=8, seed=0), MCShapley(seed=0)],
                n_clients=4,
                n_workers=n_workers,
            )
            return {r.algorithm: r.utility_evaluations for r in comparison.rows}

        assert rows_with(1) == rows_with(4)

    def test_n_workers_threading_preserves_values(self):
        """run_comparison(n_workers=4) wraps or reconfigures the oracle but
        never changes the computed values."""
        suite = [IPSS(total_rounds=8, seed=0), MCShapley(seed=0)]
        serial = run_comparison(monotone_game(4, seed=6).utility, suite, n_clients=4)
        parallel = run_comparison(
            monotone_game(4, seed=6).utility, suite, n_clients=4, n_workers=4
        )
        for row_s, row_p in zip(serial.rows, parallel.rows):
            assert row_s.algorithm == row_p.algorithm
            assert np.array_equal(row_s.values, row_p.values)

    def test_explicit_exact_values_used(self):
        game = monotone_game(4, seed=2)
        exact = MCShapley().run(game, 4).values
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4, exact_values=exact)
        assert comparison.rows[0].relative_error is not None

    def test_helpers_best_and_fastest(self):
        game = monotone_game(4, seed=3)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=False)
        comparison = run_comparison(game, suite, n_clients=4)
        best = comparison.best_error()
        assert best.relative_error == min(
            r.relative_error for r in comparison.rows if r.relative_error is not None
        )
        fastest = comparison.fastest()
        assert not fastest.is_exact

    def test_row_lookup(self):
        game = monotone_game(4, seed=4)
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4)
        assert comparison.row("IPSS").algorithm == "IPSS"
        with pytest.raises(KeyError):
            comparison.row("nonexistent")

    def test_to_records(self):
        game = monotone_game(4, seed=5)
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4)
        records = comparison.to_records()
        assert records[0]["algorithm"] == "IPSS"
        assert "time_s" in records[0]


class TestComparisonDataclasses:
    def test_best_error_requires_approximate_rows(self):
        comparison = AlgorithmComparison(
            rows=[
                ComparisonRow(
                    algorithm="exact",
                    values=np.zeros(2),
                    elapsed_seconds=1.0,
                    utility_evaluations=4,
                    is_exact=True,
                )
            ]
        )
        with pytest.raises(ValueError):
            comparison.best_error()


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 200, "b": None}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in text  # separator present
        assert "200" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_custom_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_format_cell_scientific_for_extremes(self):
        text = format_table([{"x": 1e-9}, {"x": 123456.0}])
        assert "e-09" in text
        assert "e+05" in text or "1.23e" in text

    def test_format_series(self):
        text = format_series([1, 2], {"ipss": [0.1, 0.2], "tmc": [0.3, 0.4]}, x_label="gamma")
        assert "gamma" in text
        assert "ipss" in text
        assert "0.4" in text

    def test_format_series_ragged_lengths(self):
        text = format_series([1, 2, 3], {"s": [0.1]}, x_label="x")
        assert "-" in text
