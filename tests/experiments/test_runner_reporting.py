"""Tests for the comparison runner and the text reporting helpers."""

import numpy as np
import pytest

from repro.core import IPSS, MCShapley
from repro.experiments import build_algorithm_suite, run_comparison
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import AlgorithmComparison, ComparisonRow

from tests.helpers import monotone_game


class TestBuildAlgorithmSuite:
    def test_full_suite_contains_ipss_and_exact(self):
        suite = build_algorithm_suite(5, total_rounds=10)
        names = [type(a).__name__ for a in suite]
        assert "IPSS" in names
        assert "MCShapley" in names
        assert "PermShapley" not in names  # disabled by default

    def test_gradient_free_suite(self):
        suite = build_algorithm_suite(5, include_gradient=False)
        names = [type(a).__name__ for a in suite]
        assert "ORBaseline" not in names
        assert "DIGFL" not in names

    def test_sampling_budget_defaults_to_paper_table3(self):
        suite = build_algorithm_suite(10)
        ipss = [a for a in suite if type(a).__name__ == "IPSS"][0]
        assert ipss.total_rounds == 32

    def test_include_perm(self):
        suite = build_algorithm_suite(3, include_perm=True)
        assert any(type(a).__name__ == "PermShapley" for a in suite)


class TestRunComparison:
    def test_errors_computed_against_exact(self):
        game = monotone_game(5, seed=0)
        suite = build_algorithm_suite(5, total_rounds=12, include_gradient=False)
        comparison = run_comparison(game, suite, n_clients=5)
        exact_rows = [r for r in comparison.rows if r.is_exact]
        approx_rows = [r for r in comparison.rows if not r.is_exact]
        assert exact_rows and approx_rows
        assert all(r.relative_error is None for r in exact_rows)
        assert all(r.relative_error is not None for r in approx_rows)

    def test_gradient_algorithms_skipped_on_tabular_oracle(self):
        game = monotone_game(4, seed=1)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=True)
        comparison = run_comparison(game, suite, n_clients=4)
        names = [r.algorithm for r in comparison.rows]
        assert "OR" not in names  # inapplicable -> skipped, like '\\' in Table V
        assert "IPSS" in names

    def test_explicit_exact_values_used(self):
        game = monotone_game(4, seed=2)
        exact = MCShapley().run(game, 4).values
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4, exact_values=exact)
        assert comparison.rows[0].relative_error is not None

    def test_helpers_best_and_fastest(self):
        game = monotone_game(4, seed=3)
        suite = build_algorithm_suite(4, total_rounds=8, include_gradient=False)
        comparison = run_comparison(game, suite, n_clients=4)
        best = comparison.best_error()
        assert best.relative_error == min(
            r.relative_error for r in comparison.rows if r.relative_error is not None
        )
        fastest = comparison.fastest()
        assert not fastest.is_exact

    def test_row_lookup(self):
        game = monotone_game(4, seed=4)
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4)
        assert comparison.row("IPSS").algorithm == "IPSS"
        with pytest.raises(KeyError):
            comparison.row("nonexistent")

    def test_to_records(self):
        game = monotone_game(4, seed=5)
        comparison = run_comparison(game, [IPSS(total_rounds=8, seed=0)], 4)
        records = comparison.to_records()
        assert records[0]["algorithm"] == "IPSS"
        assert "time_s" in records[0]


class TestComparisonDataclasses:
    def test_best_error_requires_approximate_rows(self):
        comparison = AlgorithmComparison(
            rows=[
                ComparisonRow(
                    algorithm="exact",
                    values=np.zeros(2),
                    elapsed_seconds=1.0,
                    utility_evaluations=4,
                    is_exact=True,
                )
            ]
        )
        with pytest.raises(ValueError):
            comparison.best_error()


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 200, "b": None}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in text  # separator present
        assert "200" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_custom_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_format_cell_scientific_for_extremes(self):
        text = format_table([{"x": 1e-9}, {"x": 123456.0}])
        assert "e-09" in text
        assert "e+05" in text or "1.23e" in text

    def test_format_series(self):
        text = format_series([1, 2], {"ipss": [0.1, 0.2], "tmc": [0.3, 0.4]}, x_label="gamma")
        assert "gamma" in text
        assert "ipss" in text
        assert "0.4" in text

    def test_format_series_ragged_lengths(self):
        text = format_series([1, 2, 3], {"s": [0.1]}, x_label="x")
        assert "-" in text
