"""Tests for TaskSpec / ExperimentPlan and the resumable run pipeline."""

import json
import os

import pytest

from repro.experiments import (
    ExperimentPlan,
    TaskSpec,
    available_algorithms,
    available_tasks,
    load_manifest,
    resume_run,
    run_plan,
    run_spec,
)
from repro.experiments.pipeline import ALGORITHM_BUILDERS
from repro.fl import CoalitionUtility
from repro.store import SqliteUtilityStore

TINY_SPEC = TaskSpec(kind="adult", n_clients=3, model="logistic", scale="tiny", seed=0)
ALGOS = ("MC-Shapley", "IPSS")


class TestTaskSpec:
    def test_registry_lists_builtin_kinds(self):
        assert {"synthetic", "femnist", "adult"} <= set(available_tasks())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(kind="quantum")

    def test_synthetic_requires_setup(self):
        with pytest.raises(ValueError):
            TaskSpec(kind="synthetic", setup=None)
        spec = TaskSpec(kind="synthetic", setup="same-size-same-distribution")
        assert "same-size" in spec.label()

    def test_setup_rejected_for_other_kinds(self):
        with pytest.raises(ValueError):
            TaskSpec(kind="adult", setup="same-size-same-distribution")

    def test_unknown_model_and_scale_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(kind="adult", model="transformer")
        with pytest.raises(ValueError):
            TaskSpec(kind="adult", scale="galactic")

    def test_dict_roundtrip(self):
        spec = TaskSpec(
            kind="femnist",
            n_clients=6,
            model="mlp",
            scale="tiny",
            seed=3,
            n_null_clients=1,
            n_duplicate_clients=1,
        )
        assert TaskSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            TaskSpec.from_dict({"kind": "adult", "gpu": True})
        with pytest.raises(ValueError):
            TaskSpec.from_dict({"model": "mlp"})

    def test_build_returns_fingerprinted_utility(self):
        utility = TINY_SPEC.build()
        assert isinstance(utility, CoalitionUtility)
        assert utility.n_clients == 3
        assert utility.task_fingerprint == TINY_SPEC.fingerprint()
        utility.close()

    def test_build_with_info_reports_effective_clients(self):
        spec = TaskSpec(
            kind="femnist",
            n_clients=4,
            model="logistic",
            scale="tiny",
            n_null_clients=1,
        )
        utility, info = spec.build_with_info()
        with utility:
            assert info["n_clients"] == 4
            assert len(info["null_clients"]) == 1


class TestRunSpec:
    def test_run_spec_produces_comparison(self):
        comparison = run_spec(TINY_SPEC, algorithms=None, include_gradient=False)
        names = [row.algorithm for row in comparison.rows]
        assert "IPSS" in names and "MC-Shapley" in names
        assert comparison.task_label == TINY_SPEC.label()


class TestExperimentPlan:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ExperimentPlan(tasks=())
        with pytest.raises(ValueError):
            ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("Quantum-SV",))
        with pytest.raises(ValueError):
            ExperimentPlan(tasks=(TINY_SPEC,), n_workers=0)

    def test_registry_covers_the_paper_lineup(self):
        assert {
            "MC-Shapley",
            "Perm-Shapley",
            "IPSS",
            "Extended-TMC",
            "Extended-GTB",
            "CC-Shapley",
            "DIG-FL",
            "GTG-Shapley",
            "OR",
            "lambda-MR",
        } <= set(available_algorithms())

    def test_fingerprint_ignores_concurrency_and_name(self):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        relabeled = ExperimentPlan(
            tasks=(TINY_SPEC,), algorithms=ALGOS, name="other", n_workers=4
        )
        assert plan.fingerprint() == relabeled.fingerprint()
        different = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("IPSS",))
        assert plan.fingerprint() != different.fingerprint()

    def test_cells_enumerate_tasks_x_algorithms(self):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        cells = plan.cells()
        assert len(cells) == 2
        assert len({cell_id for _, _, cell_id in cells}) == 2

    def test_dict_roundtrip(self):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS, n_workers=2)
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan

    def test_backend_validated_recorded_and_fingerprint_neutral(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentPlan(tasks=(TINY_SPEC,), backend="gpu")
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS, backend="vectorized")
        assert plan.to_dict()["backend"] == "vectorized"
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan
        # Executor choice must not invalidate completed cells on resume.
        serial = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        assert plan.fingerprint() == serial.fingerprint()
        assert "backend" not in serial.to_dict()  # default elided


class TestRunPlan:
    def test_manifest_and_results_written(self, tmp_path):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        report = run_plan(plan, str(tmp_path / "run"))
        assert report.cells_run == 2
        assert report.fl_trainings > 0
        manifest = load_manifest(str(tmp_path / "run"))
        assert manifest["plan_fingerprint"] == plan.fingerprint()
        assert all(c["status"] == "done" for c in manifest["cells"].values())
        for cell in manifest["cells"].values():
            assert os.path.exists(tmp_path / "run" / cell["result_file"])
        summary = json.loads((tmp_path / "run" / "summary.json").read_text())
        assert summary["fl_trainings"] == report.fl_trainings

    def test_refuses_to_clobber_existing_run(self, tmp_path):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("MC-Shapley",))
        run_plan(plan, str(tmp_path / "run"))
        with pytest.raises(ValueError, match="resume"):
            run_plan(plan, str(tmp_path / "run"))

    def test_resume_refuses_mismatched_plan(self, tmp_path):
        run_plan(
            ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("MC-Shapley",)),
            str(tmp_path / "run"),
        )
        other = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("IPSS",))
        with pytest.raises(ValueError, match="fingerprint|match"):
            run_plan(other, str(tmp_path / "run"), resume=True)

    def test_rerun_against_store_trains_nothing(self, tmp_path):
        """Acceptance bar: second run of a finished campaign = 0 trainings,
        bitwise-identical values."""
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        store = str(tmp_path / "store.sqlite")
        first = run_plan(plan, str(tmp_path / "run1"), store=store)
        second = run_plan(plan, str(tmp_path / "run2"), store=store)
        assert first.fl_trainings > 0
        assert second.fl_trainings == 0
        assert second.cells_run == 2  # recomputed, but served from the store

        def values(run_dir):
            manifest = load_manifest(str(run_dir))
            out = {}
            for cell in manifest["cells"].values():
                payload = json.loads((run_dir / cell["result_file"]).read_text())
                out[cell["algorithm"]] = payload["result"]["values"]
            return out

        assert values(tmp_path / "run1") == values(tmp_path / "run2")  # bitwise

    def test_interrupt_and_resume_computes_only_missing_cells(
        self, tmp_path, monkeypatch
    ):
        """Kill the run mid-campaign; resume must redo only the lost cell and,
        with the store attached, retrain zero coalitions."""
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        store = str(tmp_path / "store.sqlite")

        class Boom(RuntimeError):
            pass

        real_builder = ALGORITHM_BUILDERS["IPSS"]

        def exploding_builder(n, gamma, seed):
            raise Boom("simulated crash before the IPSS cell")

        monkeypatch.setitem(ALGORITHM_BUILDERS, "IPSS", exploding_builder)
        with pytest.raises(Boom):
            run_plan(plan, str(tmp_path / "run"), store=store)

        manifest = load_manifest(str(tmp_path / "run"))
        assert manifest["cells"]  # MC-Shapley cell persisted before the crash
        statuses = {c["algorithm"]: c["status"] for c in manifest["cells"].values()}
        assert statuses == {"MC-Shapley": "done"}

        monkeypatch.setitem(ALGORITHM_BUILDERS, "IPSS", real_builder)
        report = resume_run(str(tmp_path / "run"), store=store)
        assert report.cells_resumed == 1  # MC-Shapley loaded, not recomputed
        assert report.cells_run == 1  # only the lost IPSS cell
        assert report.fl_trainings == 0  # its coalitions came from the store

    def test_resume_finished_run_is_a_noop(self, tmp_path):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        run_plan(plan, str(tmp_path / "run"))
        report = resume_run(str(tmp_path / "run"))
        assert report.cells_run == 0
        assert report.cells_resumed == 2
        assert report.fl_trainings == 0
        assert len([r for r in report.rows if r["status"] == "done"]) == 2

    def test_resume_without_manifest_raises(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to resume"):
            resume_run(str(tmp_path / "empty"))

    def test_inapplicable_algorithm_recorded_as_skip(self, tmp_path):
        """Gradient methods on an XGBoost task mirror Table V's '\\' cells."""
        spec = TaskSpec(kind="adult", n_clients=3, model="xgb", scale="tiny", seed=0)
        plan = ExperimentPlan(tasks=(spec,), algorithms=("MC-Shapley", "OR"))
        report = run_plan(plan, str(tmp_path / "run"))
        assert report.cells_skipped == 1
        skipped = [r for r in report.rows if r["status"] == "skipped"]
        assert skipped[0]["algorithm"] == "OR"
        assert skipped[0]["reason"]

    def test_errors_scored_against_mc_shapley(self, tmp_path):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=ALGOS)
        report = run_plan(plan, str(tmp_path / "run"))
        by_algorithm = {r["algorithm"]: r for r in report.rows}
        assert by_algorithm["MC-Shapley"]["error_l2"] is None
        assert by_algorithm["IPSS"]["error_l2"] is not None

    def test_store_opened_from_path_is_closed(self, tmp_path):
        plan = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("MC-Shapley",))
        store_path = str(tmp_path / "store.sqlite")
        run_plan(plan, str(tmp_path / "run"), store=store_path)
        # reopenable and populated => the run released its handle cleanly
        with SqliteUtilityStore(store_path) as store:
            assert len(store) > 0


class TestReviewRegressions:
    def test_plan_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExperimentPlan fields"):
            ExperimentPlan.from_dict(
                {"tasks": [TINY_SPEC.to_dict()], "algorithm": ["IPSS"]}
            )
        with pytest.raises(ValueError, match="tasks"):
            ExperimentPlan.from_dict({"algorithms": ["IPSS"]})

    def test_spec_seed_must_be_integer(self):
        with pytest.raises(ValueError, match="seed"):
            TaskSpec(kind="adult", seed=None)
        with pytest.raises(ValueError, match="seed"):
            TaskSpec(kind="adult", seed=0.5)

    def test_figures_refuse_ad_hoc_scales(self):
        from dataclasses import replace

        from repro.experiments import ExperimentScale, figures

        custom = replace(ExperimentScale.tiny(), fl_rounds=20)
        with pytest.raises(ValueError, match="preset"):
            figures.figure1b(scale=custom, n_clients=3, model="logistic")
