"""Tests for experiment configuration and task builders."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    PAPER_SAMPLING_ROUNDS,
    SYNTHETIC_SETUPS,
    build_adult_task,
    build_femnist_task,
    build_synthetic_task,
    sampling_rounds_for,
)
from repro.fl import CoalitionUtility

TINY = ExperimentScale.tiny()


class TestSamplingRounds:
    def test_paper_table3_values(self):
        assert PAPER_SAMPLING_ROUNDS == {3: 5, 6: 8, 10: 32}
        assert sampling_rounds_for(3) == 5
        assert sampling_rounds_for(6) == 8
        assert sampling_rounds_for(10) == 32

    def test_large_n_uses_nlogn_rule(self):
        assert sampling_rounds_for(100) >= 100
        assert sampling_rounds_for(20) >= 22

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            sampling_rounds_for(0)


class TestExperimentScale:
    def test_named_scales(self):
        assert ExperimentScale.tiny().name == "tiny"
        assert ExperimentScale.small().name == "small"
        assert ExperimentScale.paper().name == "paper"

    def test_from_name_roundtrip(self):
        assert ExperimentScale.from_name("tiny") == ExperimentScale.tiny()
        with pytest.raises(ValueError):
            ExperimentScale.from_name("huge")

    def test_scales_are_ordered_in_size(self):
        tiny, small, paper = (
            ExperimentScale.tiny(),
            ExperimentScale.small(),
            ExperimentScale.paper(),
        )
        assert tiny.samples_per_client < small.samples_per_client < paper.samples_per_client


class TestSyntheticTaskBuilder:
    @pytest.mark.parametrize("setup", SYNTHETIC_SETUPS)
    def test_all_setups_build(self, setup):
        utility = build_synthetic_task(setup, n_clients=3, model="logistic", scale=TINY, seed=0)
        assert isinstance(utility, CoalitionUtility)
        assert utility.n_clients == 3
        value = utility(frozenset({0, 1, 2}))
        assert 0.0 <= value <= 1.0

    def test_unknown_setup_raises(self):
        with pytest.raises(ValueError):
            build_synthetic_task("same-size-chaotic", scale=TINY)

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            build_synthetic_task(SYNTHETIC_SETUPS[0], model="transformer", scale=TINY)

    def test_different_size_setup_has_unequal_clients(self):
        utility = build_synthetic_task(
            "different-size-same-distribution", n_clients=4, model="logistic", scale=TINY, seed=0
        )
        sizes = [len(d) for d in utility.trainer.client_datasets]
        assert max(sizes) > min(sizes)

    def test_deterministic_given_seed(self):
        a = build_synthetic_task(SYNTHETIC_SETUPS[0], n_clients=3, model="logistic", scale=TINY, seed=1)
        b = build_synthetic_task(SYNTHETIC_SETUPS[0], n_clients=3, model="logistic", scale=TINY, seed=1)
        assert a(frozenset({0, 1})) == b(frozenset({0, 1}))


class TestFemnistTaskBuilder:
    def test_basic_construction(self):
        utility, info = build_femnist_task(n_clients=4, model="logistic", scale=TINY, seed=0)
        assert utility.n_clients == 4
        assert info["null_clients"] == []
        assert info["duplicate_groups"] == []

    def test_null_and_duplicate_clients(self):
        utility, info = build_femnist_task(
            n_clients=6,
            model="logistic",
            scale=TINY,
            n_null_clients=1,
            n_duplicate_clients=1,
            seed=0,
        )
        assert info["n_clients"] == 6
        null_client = info["null_clients"][0]
        assert len(utility.trainer.client_datasets[null_client]) == 0
        group = info["duplicate_groups"][0]
        original, duplicate = group[0], group[-1]
        assert len(utility.trainer.client_datasets[original]) == len(
            utility.trainer.client_datasets[duplicate]
        )

    def test_too_many_special_clients_raise(self):
        with pytest.raises(ValueError):
            build_femnist_task(
                n_clients=3, scale=TINY, n_null_clients=2, n_duplicate_clients=1
            )

    def test_cnn_model_variant(self):
        utility, _ = build_femnist_task(n_clients=3, model="cnn", scale=TINY, seed=0)
        value = utility(frozenset({0}))
        assert 0.0 <= value <= 1.0


class TestAdultTaskBuilder:
    def test_mlp_variant(self):
        utility = build_adult_task(n_clients=3, model="mlp", scale=TINY, seed=0)
        assert 0.0 <= utility(frozenset({0, 1})) <= 1.0

    def test_xgb_variant_is_not_parametric(self):
        utility = build_adult_task(n_clients=3, model="xgb", scale=TINY, seed=0)
        assert 0.0 <= utility(frozenset({0, 1, 2})) <= 1.0
        with pytest.raises(TypeError):
            utility.trainer.grand_coalition_history()
