"""Pipeline-level anytime behavior: mid-cell checkpoints, stop rules, streams."""

import json
import os

import numpy as np
import pytest

from repro.core import BudgetRule, parse_stopping_rule
from repro.experiments.figures import convergence_curve
from repro.experiments.pipeline import (
    CHECKPOINTS_DIR,
    ExperimentPlan,
    resume_run,
    run_plan,
)
from repro.experiments.specs import TaskSpec
from repro.experiments.tables import convergence_table
from repro.store import MemoryUtilityStore


def _spec(n_clients=3, seed=0):
    return TaskSpec(
        kind="adult", model="logistic", n_clients=n_clients, scale="tiny", seed=seed
    )


def _plan(algorithms=("MC-Shapley", "IPSS"), **kwargs):
    return ExperimentPlan(tasks=(_spec(**kwargs),), algorithms=algorithms)


def _cell_values(run_dir):
    values = {}
    results_dir = os.path.join(run_dir, "results")
    for name in sorted(os.listdir(results_dir)):
        with open(os.path.join(results_dir, name), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        values[payload["algorithm"]] = payload["result"]["values"]
    return values


class _InterruptAfter:
    """on_snapshot observer that raises KeyboardInterrupt after N snapshots."""

    def __init__(self, count):
        self.remaining = count

    def __call__(self, spec, algorithm, snapshot):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt


class TestMidCellCheckpointResume:
    def test_interrupted_cell_resumes_mid_run_bitwise(self, tmp_path):
        run_dir = str(tmp_path / "interrupted")
        with MemoryUtilityStore() as store:
            with pytest.raises(KeyboardInterrupt):
                run_plan(_plan(), run_dir, store=store, on_snapshot=_InterruptAfter(2))
            checkpoints = os.listdir(os.path.join(run_dir, CHECKPOINTS_DIR))
            assert len(checkpoints) == 1  # the in-flight cell left its state

            report = resume_run(run_dir, store=store)
        assert report.cells_continued == 1
        assert report.cells_run == 2

        reference_dir = str(tmp_path / "reference")
        with MemoryUtilityStore() as store:
            run_plan(_plan(), reference_dir, store=store)
        assert _cell_values(run_dir) == _cell_values(reference_dir)
        # Completed cells clean up their checkpoints.
        assert os.listdir(os.path.join(run_dir, CHECKPOINTS_DIR)) == []

    def test_resume_with_warm_store_trains_nothing_extra(self, tmp_path):
        with MemoryUtilityStore() as store:
            warm_dir = str(tmp_path / "warm")
            run_plan(_plan(), warm_dir, store=store)  # populates the store

            run_dir = str(tmp_path / "interrupted")
            with pytest.raises(KeyboardInterrupt):
                run_plan(_plan(), run_dir, store=store, on_snapshot=_InterruptAfter(2))
            report = resume_run(run_dir, store=store)
            assert report.fl_trainings == 0
            assert report.cells_continued == 1
            assert _cell_values(run_dir) == _cell_values(warm_dir)

    def test_resumed_invocation_counts_only_its_own_trainings(self, tmp_path):
        # Without a store: the interrupted invocation pays some trainings,
        # the resume pays only the rest — the two reports must sum to the
        # uninterrupted total, not double-count the checkpointed prefix.
        run_dir = str(tmp_path / "interrupted")
        with pytest.raises(KeyboardInterrupt):
            run_plan(
                _plan(algorithms=("IPSS",)), run_dir, on_snapshot=_InterruptAfter(2)
            )
        checkpoint_dir = os.path.join(run_dir, CHECKPOINTS_DIR)
        (name,) = os.listdir(checkpoint_dir)
        with open(os.path.join(checkpoint_dir, name), "r", encoding="utf-8") as handle:
            paid_before_interrupt = json.load(handle)["evaluations"]
        assert paid_before_interrupt > 0

        report = resume_run(run_dir)
        reference = run_plan(_plan(algorithms=("IPSS",)), str(tmp_path / "reference"))
        assert (
            paid_before_interrupt + report.fl_trainings == reference.fl_trainings
        ), "resume must not re-count trainings already paid before the interrupt"

    def test_stale_checkpoint_is_ignored_not_fatal(self, tmp_path):
        run_dir = str(tmp_path / "stale")
        with pytest.raises(KeyboardInterrupt):
            run_plan(_plan(), run_dir, on_snapshot=_InterruptAfter(2))
        checkpoint_dir = os.path.join(run_dir, CHECKPOINTS_DIR)
        (name,) = os.listdir(checkpoint_dir)
        path = os.path.join(checkpoint_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        state["config"] = {"total_rounds": 999_999}  # as if the budget changed
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(state, handle)

        report = resume_run(run_dir)
        assert report.cells_run == 2
        assert report.cells_continued == 0  # restarted the cell from scratch

        reference_dir = str(tmp_path / "reference")
        run_plan(_plan(), reference_dir)
        assert _cell_values(run_dir) == _cell_values(reference_dir)

    def test_checkpoint_without_rng_state_restarts_cell(self, tmp_path):
        # A parseable, config-matching checkpoint whose RNG snapshot is gone
        # must restart the cell — not surface as a permanently-skipped cell.
        run_dir = str(tmp_path / "norng")
        with pytest.raises(KeyboardInterrupt):
            run_plan(_plan(), run_dir, on_snapshot=_InterruptAfter(2))
        checkpoint_dir = os.path.join(run_dir, CHECKPOINTS_DIR)
        (name,) = os.listdir(checkpoint_dir)
        path = os.path.join(checkpoint_dir, name)
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        state["rng_state"] = None
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(state, handle)

        report = resume_run(run_dir)
        assert report.cells_skipped == 0
        assert report.cells_run == 2
        assert report.cells_continued == 0

        reference_dir = str(tmp_path / "reference")
        run_plan(_plan(), reference_dir)
        assert _cell_values(run_dir) == _cell_values(reference_dir)

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        run_dir = str(tmp_path / "corrupt")
        with pytest.raises(KeyboardInterrupt):
            run_plan(_plan(), run_dir, on_snapshot=_InterruptAfter(2))
        checkpoint_dir = os.path.join(run_dir, CHECKPOINTS_DIR)
        (name,) = os.listdir(checkpoint_dir)
        with open(os.path.join(checkpoint_dir, name), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        report = resume_run(run_dir)
        assert report.cells_run == 2

    def test_checkpoint_every_zero_disables_checkpoints(self, tmp_path):
        run_dir = str(tmp_path / "nocp")
        with pytest.raises(KeyboardInterrupt):
            run_plan(
                _plan(),
                run_dir,
                checkpoint_every=0,
                on_snapshot=_InterruptAfter(2),
            )
        assert not os.path.exists(os.path.join(run_dir, CHECKPOINTS_DIR))


class TestStopRules:
    def test_stop_rule_limits_cell_evaluations(self, tmp_path):
        full_dir = str(tmp_path / "full")
        full = run_plan(_plan(algorithms=("IPSS",)), full_dir)
        stopped_dir = str(tmp_path / "stopped")
        stopped = run_plan(
            _plan(algorithms=("IPSS",)), stopped_dir, stop_rule=BudgetRule(2)
        )
        assert stopped.fl_trainings < full.fl_trainings
        (payload,) = [
            json.load(open(os.path.join(stopped_dir, "results", f)))
            for f in os.listdir(os.path.join(stopped_dir, "results"))
        ]
        assert payload["result"]["metadata"]["stopped_early"] is True
        assert payload["result"]["metadata"]["stopped_by"] == "budget:2"

    def test_stop_rule_is_reset_between_cells(self, tmp_path):
        # A stateful rule must not carry its streak from one cell to the next:
        # with the same rule instance, both cells stop (each on its own count).
        run_dir = str(tmp_path / "both")
        report = run_plan(
            _plan(algorithms=("IPSS", "CC-Shapley")), run_dir, stop_rule=BudgetRule(2)
        )
        for name in os.listdir(os.path.join(run_dir, "results")):
            payload = json.load(open(os.path.join(run_dir, "results", name)))
            assert payload["result"]["metadata"].get("stopped_early") is True
        assert report.cells_run == 2

    def test_parsed_rule_through_robustness(self, tmp_path):
        from repro.scenarios import run_robustness

        report = run_robustness(
            ["free-rider"],
            str(tmp_path / "robustness"),
            algorithms=("IPSS",),
            stop_rule=parse_stopping_rule("budget:2"),
        )
        from repro.experiments.config import sampling_rounds_for

        done = [row for row in report.rows if row["status"] == "done"]
        assert done, report.rows
        # The rule fires at the first chunk boundary past the budget, well
        # short of each cell's full sampling budget.
        assert all(
            row["evaluations"] < sampling_rounds_for(row["n"]) for row in done
        )


class TestSnapshotStream:
    def test_on_snapshot_sees_every_chunk_of_every_cell(self, tmp_path):
        seen = []
        run_plan(
            _plan(),
            str(tmp_path / "stream"),
            on_snapshot=lambda spec, algorithm, snap: seen.append(
                (algorithm, snap.chunk_index, snap.done)
            ),
        )
        algorithms = {alg for alg, _, _ in seen}
        assert algorithms == {"MC-Shapley", "IPSS"}
        assert sum(1 for _, _, done in seen if done) == 2

    def test_gradient_based_cells_also_stream(self, tmp_path):
        # Single-chunk adapters still emit their terminal snapshot, so a
        # --json-stream consumer sees every cell of the campaign.
        seen = []
        report = run_plan(
            _plan(algorithms=("IPSS", "OR")),
            str(tmp_path / "gradient"),
            on_snapshot=lambda spec, algorithm, snap: seen.append(
                (algorithm, snap.done)
            ),
        )
        assert report.cells_run == 2
        assert ("OR", True) in seen
        assert report.fl_trainings > 0


class TestConvergenceReporting:
    def test_convergence_curve_and_table(self):
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from helpers import monotone_game
        from repro.core import IPSS, MCShapley

        exact = MCShapley(seed=0).run(monotone_game(6, seed=4), 6).values
        curve = convergence_curve(
            IPSS(total_rounds=24, seed=0),
            monotone_game(6, seed=4),
            6,
            reference=exact,
        )
        assert curve["done"] is True
        assert curve["evaluations"] == sorted(curve["evaluations"])
        assert len(curve["chunk"]) >= 2
        # The error trajectory must reach the full-budget error at the end.
        assert curve["error_l2"][-1] == pytest.approx(
            np.linalg.norm(
                IPSS(total_rounds=24, seed=0).run(monotone_game(6, seed=4), 6).values
                - exact
            )
            / np.linalg.norm(exact)
        )
        rendered = convergence_table(curve)
        assert "convergence: IPSS" in rendered
        assert "evaluations" in rendered

    def test_convergence_curve_records_stop(self):
        import sys

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from helpers import monotone_game
        from repro.core import IPSS

        curve = convergence_curve(
            IPSS(total_rounds=24, seed=0),
            monotone_game(6, seed=4),
            6,
            stopping_rule=BudgetRule(4),
        )
        assert curve["stopped_by"] == "budget:4"
        assert curve["done"] is False
        rendered = convergence_table(curve)
        assert "stopped early by budget:4" in rendered
