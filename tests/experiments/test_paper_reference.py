"""Tests for the paper-reference data used in EXPERIMENTS.md comparisons."""

from repro.experiments.paper_reference import (
    PAPER_CLAIMS,
    PAPER_TABLE4_ERRORS,
    PAPER_TABLE5_ERRORS,
    paper_best_algorithm,
)


class TestPaperReference:
    def test_ipss_is_best_in_every_table4_setting(self):
        for model, by_n in PAPER_TABLE4_ERRORS.items():
            for n in by_n:
                assert paper_best_algorithm(by_n, n) == "IPSS", (model, n)

    def test_ipss_is_best_in_every_table5_setting(self):
        for model, by_n in PAPER_TABLE5_ERRORS.items():
            for n in by_n:
                assert paper_best_algorithm(by_n, n) == "IPSS", (model, n)

    def test_table4_covers_all_client_counts(self):
        assert set(PAPER_TABLE4_ERRORS["mlp"]) == {3, 6, 10}
        assert set(PAPER_TABLE4_ERRORS["cnn"]) == {3, 6, 10}

    def test_table5_xgb_has_no_gradient_baselines(self):
        for n, errors in PAPER_TABLE5_ERRORS["xgb"].items():
            assert "OR" not in errors
            assert "GTG-Shapley" not in errors

    def test_claims_cover_all_figures(self):
        assert set(PAPER_CLAIMS) == {
            "figure1b",
            "figure4",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
        }
