"""The worker loop, in-process: claim → evaluate → deposit → ledger."""

import math

import pytest

from repro.fleet import ModeledCostEvaluator
from repro.fleet.queue import LeaseQueue, WorkPayload
from repro.fleet.worker import default_worker_id, run_worker
from repro.store import open_store, utility_key

N = 6
NAMESPACE = "worker-tests"


class ExplodingEvaluator:
    """Picklable evaluator that always fails (exercises release-on-error)."""

    n_clients = N

    def __call__(self, coalition):
        raise RuntimeError("training exploded")


@pytest.fixture
def rig(tmp_path):
    """(queue, store_path, evaluator) with one registered run."""
    queue_dir = str(tmp_path / "q")
    store_path = str(tmp_path / "store.sqlite")
    evaluator = ModeledCostEvaluator(n_clients=N, tau=0.0, seed=7)
    queue = LeaseQueue(queue_dir)
    queue.register_run(
        "r1",
        WorkPayload(
            evaluator=evaluator,
            store_path=store_path,
            store_backend="sqlite",
            namespace=NAMESPACE,
        ),
    )
    yield queue, store_path, evaluator
    queue.close()


def plan(k=N):
    return [frozenset(range(i + 1)) for i in range(k)]


class TestServeBatches:
    def test_worker_deposits_utilities_and_records_trainings(self, rig):
        queue, store_path, evaluator = rig
        coalitions = plan()
        queue.enqueue("r1", [coalitions[:3], coalitions[3:]])

        stats = run_worker(
            queue.queue_dir, poll_interval=0.01, max_batches=2, worker_id="w1"
        )
        assert stats.batches == 2
        assert stats.trainings == len(coalitions)
        assert stats.store_hits == 0
        assert stats.released == 0
        assert stats.runs_seen == 1

        with open_store(store_path) as store:
            for coalition in coalitions:
                value = store.get(utility_key(NAMESPACE, coalition))
                assert value == evaluator(coalition)  # bitwise round-trip
        assert queue.training_counts() == (len(coalitions), len(coalitions))
        assert queue.counts("r1").outstanding == 0

    def test_predeposited_coalitions_are_store_hits_not_trainings(self, rig):
        queue, store_path, evaluator = rig
        coalitions = plan()
        with open_store(store_path) as store:
            for coalition in coalitions[:2]:
                store.put(utility_key(NAMESPACE, coalition), evaluator(coalition))
        queue.enqueue("r1", [coalitions])

        stats = run_worker(
            queue.queue_dir, poll_interval=0.01, max_batches=1, worker_id="w1"
        )
        assert stats.store_hits == 2
        assert stats.trainings == len(coalitions) - 2
        total, distinct = queue.training_counts()
        assert total == distinct == len(coalitions) - 2

    def test_two_sequential_workers_never_duplicate_trainings(self, rig):
        queue, store_path, _ = rig
        coalitions = plan()
        queue.enqueue("r1", [coalitions])
        run_worker(queue.queue_dir, poll_interval=0.01, max_batches=1, worker_id="w1")
        # Same coalitions again: everything is already in the store.
        queue.enqueue("r1", [coalitions])
        stats = run_worker(
            queue.queue_dir, poll_interval=0.01, max_batches=1, worker_id="w2"
        )
        assert stats.trainings == 0
        assert stats.store_hits == len(coalitions)
        assert queue.training_counts() == (len(coalitions), len(coalitions))


class TestFailureSemantics:
    def test_failed_evaluation_releases_the_batch(self, tmp_path):
        queue = LeaseQueue(str(tmp_path / "q"))
        queue.register_run(
            "r1",
            WorkPayload(
                evaluator=ExplodingEvaluator(),
                store_path=str(tmp_path / "store.sqlite"),
                store_backend="sqlite",
                namespace=NAMESPACE,
            ),
        )
        (batch_id,) = queue.enqueue("r1", [plan(2)])
        stats = run_worker(
            queue.queue_dir,
            poll_interval=0.01,
            max_batches=1,
            idle_timeout=0.2,
            worker_id="w1",
        )
        assert stats.batches == 0
        assert stats.released >= 1
        status, attempts, last_error = queue.statuses([batch_id])[batch_id]
        assert status in ("pending", "failed")
        assert "training exploded" in last_error
        assert queue.training_counts() == (0, 0)
        queue.close()

    def test_non_finite_utility_is_not_a_ledger_training(self, tmp_path):
        # NaN utilities are never persisted (store.put policy); the worker
        # still completes the batch and the coordinator falls back locally.
        queue = LeaseQueue(str(tmp_path / "q"))
        queue.register_run(
            "r1",
            WorkPayload(
                evaluator=NaNEvaluator(),
                store_path=str(tmp_path / "store.sqlite"),
                store_backend="sqlite",
                namespace=NAMESPACE,
            ),
        )
        (batch_id,) = queue.enqueue("r1", [plan(2)])
        stats = run_worker(
            queue.queue_dir, poll_interval=0.01, max_batches=1, worker_id="w1"
        )
        assert stats.batches == 1
        assert queue.statuses([batch_id])[batch_id][0] == "done"
        queue.close()


class NaNEvaluator:
    n_clients = N

    def __call__(self, coalition):
        return math.nan


class TestTermination:
    def test_idle_timeout_exits_an_empty_queue(self, tmp_path):
        stats = run_worker(
            str(tmp_path / "q"),
            poll_interval=0.01,
            idle_timeout=0.1,
            worker_id="w1",
        )
        assert stats.batches == 0

    def test_stop_when_finished_exits_once_runs_finish(self, rig):
        queue, _, _ = rig
        coalitions = plan(3)
        queue.enqueue("r1", [coalitions])
        queue.finish_run("r1")
        stats = run_worker(
            queue.queue_dir,
            poll_interval=0.01,
            stop_when_finished=True,
            worker_id="w1",
        )
        # Outstanding work is drained before exiting.
        assert stats.batches == 1
        assert queue.counts("r1").outstanding == 0

    def test_worker_registers_heartbeat_row(self, rig):
        queue, _, _ = rig
        queue.enqueue("r1", [plan(2)])
        run_worker(queue.queue_dir, poll_interval=0.01, max_batches=1, worker_id="wx")
        workers = {w["worker_id"]: w for w in queue.workers()}
        assert workers["wx"]["batches_done"] == 1

    def test_default_worker_id_contains_pid(self):
        import os

        assert str(os.getpid()) in default_worker_id()
