"""The lease queue's protocol: claim, renew, complete, expiry, contention."""

import json
import sqlite3
import subprocess
import sys
import threading

import pytest

from repro.fleet.queue import (
    DEFAULT_MAX_ATTEMPTS,
    LeaseQueue,
    QUEUE_FILENAME,
    WorkPayload,
)


def make_payload(namespace="ns"):
    return WorkPayload(
        evaluator=len,  # picklable stand-in; queue tests never evaluate
        store_path="/tmp/store.sqlite",
        store_backend="sqlite",
        namespace=namespace,
    )


@pytest.fixture
def queue(tmp_path):
    with LeaseQueue(str(tmp_path / "q")) as q:
        yield q


COALITIONS = [frozenset({0}), frozenset({0, 1}), frozenset()]


class TestRuns:
    def test_register_and_fetch_payload_roundtrip(self, queue):
        queue.register_run("r1", make_payload("abc"))
        payload = queue.run_payload("r1")
        assert payload.namespace == "abc"
        assert payload.store_backend == "sqlite"
        assert queue.active_runs() == ["r1"]

    def test_finish_run_removes_from_active(self, queue):
        queue.register_run("r1", make_payload())
        queue.finish_run("r1")
        assert queue.active_runs() == []

    def test_unknown_run_raises(self, queue):
        with pytest.raises(KeyError):
            queue.run_payload("nope")

    def test_unpicklable_payload_rejected(self, queue):
        payload = WorkPayload(
            evaluator=lambda c: 0.0,
            store_path="s",
            store_backend="sqlite",
            namespace="n",
        )
        with pytest.raises(ValueError, match="RPR004"):
            queue.register_run("r1", payload)


class TestClaimLifecycle:
    def test_enqueue_then_claim_returns_coalitions_in_order(self, queue):
        queue.register_run("r1", make_payload())
        ids = queue.enqueue("r1", [COALITIONS, COALITIONS[:1]])
        assert len(ids) == 2
        assert len(set(ids)) == 2

        claim = queue.claim("w1", lease_seconds=30)
        assert claim.batch_id == ids[0]
        assert claim.run_id == "r1"
        assert claim.coalitions == tuple(COALITIONS)
        assert claim.attempts == 1

    def test_claimed_batch_is_invisible_to_others(self, queue):
        queue.register_run("r1", make_payload())
        queue.enqueue("r1", [COALITIONS])
        assert queue.claim("w1", 30) is not None
        assert queue.claim("w2", 30) is None

    def test_complete_retires_batch(self, queue):
        queue.register_run("r1", make_payload())
        (batch_id,) = queue.enqueue("r1", [COALITIONS])
        claim = queue.claim("w1", 30)
        assert queue.complete(claim.batch_id, "w1") is True
        assert queue.statuses([batch_id])[batch_id][0] == "done"
        assert queue.counts("r1").outstanding == 0

    def test_complete_by_non_owner_is_refused(self, queue):
        queue.register_run("r1", make_payload())
        queue.enqueue("r1", [COALITIONS])
        claim = queue.claim("w1", 30)
        assert queue.complete(claim.batch_id, "w2") is False

    def test_release_returns_batch_to_pending_with_error(self, queue):
        queue.register_run("r1", make_payload())
        (batch_id,) = queue.enqueue("r1", [COALITIONS])
        claim = queue.claim("w1", 30)
        assert queue.release(claim.batch_id, "w1", error="boom") is True
        status, attempts, last_error = queue.statuses([batch_id])[batch_id]
        assert status == "pending"
        assert attempts == 1
        assert last_error == "boom"
        # The batch is deliverable again — attempts keep counting up.
        again = queue.claim("w2", 30)
        assert again.batch_id == batch_id
        assert again.attempts == 2

    def test_renew_extends_only_owned_leases(self, queue):
        queue.register_run("r1", make_payload())
        queue.enqueue("r1", [COALITIONS])
        claim = queue.claim("w1", 30)
        assert queue.renew(claim.batch_id, "w1", 60) is True
        assert queue.renew(claim.batch_id, "w2", 60) is False
        assert queue.renew("r1:999", "w1", 60) is False


class TestLeaseExpiry:
    def test_expired_lease_is_requeued_and_reclaim_increments_attempts(self, queue):
        queue.register_run("r1", make_payload())
        (batch_id,) = queue.enqueue("r1", [COALITIONS])
        queue.claim("w1", lease_seconds=-1)  # already expired
        requeued, failed = queue.requeue_expired()
        assert (requeued, failed) == (1, 0)
        claim = queue.claim("w2", 30)
        assert claim.batch_id == batch_id
        assert claim.attempts == 2

    def test_claim_requeues_expired_without_explicit_sweep(self, queue):
        queue.register_run("r1", make_payload())
        (batch_id,) = queue.enqueue("r1", [COALITIONS])
        queue.claim("w1", lease_seconds=-1)
        # No requeue_expired() call: the next claim folds the sweep in.
        claim = queue.claim("w2", 30)
        assert claim is not None and claim.batch_id == batch_id

    def test_late_complete_after_expiry_is_ignored(self, queue):
        queue.register_run("r1", make_payload())
        (batch_id,) = queue.enqueue("r1", [COALITIONS])
        stale = queue.claim("w1", lease_seconds=-1)
        fresh = queue.claim("w2", 30)
        assert fresh.batch_id == stale.batch_id
        assert queue.complete(stale.batch_id, "w1") is False
        assert queue.complete(fresh.batch_id, "w2") is True

    def test_exhausted_attempts_mark_batch_failed(self, tmp_path):
        with LeaseQueue(str(tmp_path / "q"), max_attempts=2) as queue:
            queue.register_run("r1", make_payload())
            (batch_id,) = queue.enqueue("r1", [COALITIONS])
            queue.claim("w1", lease_seconds=-1)
            queue.requeue_expired()
            queue.claim("w1", lease_seconds=-1)
            requeued, failed = queue.requeue_expired()
            assert (requeued, failed) == (0, 1)
            status, attempts, last_error = queue.statuses([batch_id])[batch_id]
            assert status == "failed"
            assert attempts == 2
            assert "lease expired" in last_error
            assert queue.claim("w1", 30) is None


class TestLedgerAndWorkers:
    def test_training_counts_flag_duplicates(self, queue):
        queue.record_training("k1", "w1", "b1")
        queue.record_training("k2", "w1", "b1")
        assert queue.training_counts() == (2, 2)
        queue.record_training("k1", "w2", "b2")  # a duplicated training
        assert queue.training_counts() == (3, 2)

    def test_worker_heartbeats(self, queue):
        queue.register_worker("w1", pid=123)
        queue.touch_worker("w1", batches_done=2)
        queue.touch_worker("w1", batches_done=1)
        (worker,) = queue.workers()
        assert worker["worker_id"] == "w1"
        assert worker["pid"] == 123
        assert worker["batches_done"] == 3
        assert worker["last_seen"] >= worker["started_at"]

    def test_register_worker_twice_keeps_batches_done(self, queue):
        queue.register_worker("w1")
        queue.touch_worker("w1", batches_done=4)
        queue.register_worker("w1")  # a restarted worker re-registers
        assert queue.workers()[0]["batches_done"] == 4

    def test_depth_counts_outstanding(self, queue):
        queue.register_run("r1", make_payload())
        queue.enqueue("r1", [COALITIONS, COALITIONS])
        assert queue.depth() == 2
        claim = queue.claim("w1", 30)
        assert queue.depth() == 2  # leased still outstanding
        queue.complete(claim.batch_id, "w1")
        assert queue.depth() == 1

    def test_default_max_attempts(self, queue):
        assert queue.max_attempts == DEFAULT_MAX_ATTEMPTS


def _claim_worker(queue_dir, worker_id, results):
    with LeaseQueue(queue_dir) as queue:
        claimed = []
        while True:
            claim = queue.claim(worker_id, 30)
            if claim is None:
                break
            claimed.append(claim.batch_id)
            queue.complete(claim.batch_id, worker_id)
        results[worker_id] = claimed


class TestContention:
    def test_concurrent_threads_never_double_deliver(self, tmp_path):
        queue_dir = str(tmp_path / "q")
        with LeaseQueue(queue_dir) as queue:
            queue.register_run("r1", make_payload())
            expected = queue.enqueue("r1", [COALITIONS] * 40)
        results = {}
        threads = [
            threading.Thread(target=_claim_worker, args=(queue_dir, f"w{i}", results))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        claimed = [bid for ids in results.values() for bid in ids]
        assert sorted(claimed) == sorted(expected)
        assert len(set(claimed)) == len(expected)

    def test_concurrent_processes_never_double_deliver(self, tmp_path):
        queue_dir = str(tmp_path / "q")
        with LeaseQueue(queue_dir) as queue:
            queue.register_run("r1", make_payload())
            expected = queue.enqueue("r1", [COALITIONS] * 30)
        script = (
            "import json, sys\n"
            "from repro.fleet.queue import LeaseQueue\n"
            "queue_dir, worker_id = sys.argv[1], sys.argv[2]\n"
            "claimed = []\n"
            "with LeaseQueue(queue_dir) as queue:\n"
            "    while True:\n"
            "        claim = queue.claim(worker_id, 30)\n"
            "        if claim is None:\n"
            "            break\n"
            "        claimed.append(claim.batch_id)\n"
            "        queue.complete(claim.batch_id, worker_id)\n"
            "print(json.dumps(claimed))\n"
        )
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, queue_dir, f"w{i}"],
                stdout=subprocess.PIPE,
                text=True,
            )
            for i in range(3)
        ]
        claimed = []
        for process in processes:
            out, _ = process.communicate(timeout=120)
            assert process.returncode == 0
            claimed.extend(json.loads(out))
        assert sorted(claimed) == sorted(expected)
        assert len(set(claimed)) == len(expected)

    def test_queue_file_lives_under_queue_dir(self, tmp_path, queue):
        assert queue.path.endswith(QUEUE_FILENAME)
        with LeaseQueue(queue.queue_dir) as second:
            second.register_run("r2", make_payload())
        assert "r2" in queue.active_runs()


class TestBusyTolerance:
    def test_claim_survives_a_long_writer_transaction(self, tmp_path):
        queue_dir = str(tmp_path / "q")
        with LeaseQueue(queue_dir) as queue:
            queue.register_run("r1", make_payload())
            queue.enqueue("r1", [COALITIONS])

            blocker = sqlite3.connect(
                queue.path, timeout=1, isolation_level=None, check_same_thread=False
            )
            blocker.execute("BEGIN IMMEDIATE")

            def release_soon():
                blocker.execute("COMMIT")
                blocker.close()

            timer = threading.Timer(0.3, release_soon)
            timer.start()
            try:
                claim = queue.claim("w1", 30)  # blocks, then succeeds
            finally:
                timer.join()
            assert claim is not None
