"""End-to-end integration tests: full pipeline from data to valuation.

These tests run real (but tiny) FL trainings, so they are the slowest part of
the suite; everything is kept to a handful of clients and rounds.
"""

import numpy as np
import pytest

import repro
from repro.core import (
    IPSS,
    CCShapleySampling,
    ExtendedTMC,
    KGreedy,
    MCShapley,
    null_player_error,
    rank_correlation,
    relative_error_l2,
    symmetry_error,
)
from repro.datasets import (
    Dataset,
    flip_labels,
    make_classification_blobs,
    partition_iid,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig
from repro.models import LogisticRegressionModel, MLPClassifier


class TestQuickValuation:
    def test_quick_valuation_runs(self):
        result = repro.quick_valuation(n_clients=3, samples_per_client=30, total_rounds=6, seed=0)
        assert result.values.shape == (3,)
        assert result.utility_evaluations <= 6

    def test_quick_valuation_deterministic(self):
        a = repro.quick_valuation(n_clients=3, samples_per_client=30, total_rounds=6, seed=1)
        b = repro.quick_valuation(n_clients=3, samples_per_client=30, total_rounds=6, seed=1)
        assert np.allclose(a.values, b.values)


class TestRealFederationValuation:
    def test_ipss_close_to_exact_on_tiny_federation(self, tiny_fl_utility):
        exact = MCShapley().run(tiny_fl_utility).values
        estimate = IPSS(total_rounds=12, seed=0).run(tiny_fl_utility).values
        assert relative_error_l2(estimate, exact) < 0.35

    def test_exact_value_ordering_is_stable_across_schemes(self, tiny_fl_utility):
        from repro.core import CCShapley

        mc = MCShapley().run(tiny_fl_utility).values
        cc = CCShapley().run(tiny_fl_utility).values
        assert np.allclose(mc, cc, atol=1e-9)

    def test_kgreedy_tracks_exact_with_k2(self, tiny_fl_utility):
        exact = MCShapley().run(tiny_fl_utility).values
        estimate = KGreedy(max_size=2).run(tiny_fl_utility).values
        assert rank_correlation(estimate, exact) >= 0.5


class TestNoisyClientScenario:
    """A federation where one client has heavy label noise and one is empty."""

    @pytest.fixture(scope="class")
    def noisy_federation(self):
        pooled = make_classification_blobs(
            260,
            n_features=8,
            n_classes=3,
            cluster_std=2.2,
            class_separation=2.0,
            seed=13,
        )
        train, test = train_test_split(pooled, test_fraction=0.25, seed=13)
        clients = partition_iid(train, 4, seed=13)
        clients[2] = flip_labels(clients[2], 0.7, seed=13)
        clients.append(Dataset.empty_like(test, name="free-rider"))
        return CoalitionUtility(
            client_datasets=clients,
            test_dataset=test,
            model_factory=lambda: MLPClassifier(
                n_features=8, n_classes=3, hidden_sizes=(12,), epochs=3
            ),
            config=FLConfig(rounds=3, local_epochs=1),
            seed=13,
        )

    def test_exact_values_respect_axioms(self, noisy_federation):
        exact = MCShapley().run(noisy_federation).values
        # Free rider (client 4) is a null player.
        assert abs(exact[4]) < 1e-9
        # The heavily noisy client is worth less than the average clean client.
        clean_mean = np.mean([exact[0], exact[1], exact[3]])
        assert exact[2] < clean_mean

    def test_ipss_preserves_free_rider_detection(self, noisy_federation):
        estimate = IPSS(total_rounds=16, seed=0).run(noisy_federation).values
        assert null_player_error(estimate, [4]) < 0.3

    def test_sampling_baselines_run_on_real_federation(self, noisy_federation):
        for algorithm in (
            ExtendedTMC(total_rounds=12, seed=0),
            CCShapleySampling(total_rounds=12, seed=0),
        ):
            values = algorithm.run(noisy_federation).values
            assert values.shape == (5,)
            assert np.all(np.isfinite(values))


class TestDuplicateClientsScenario:
    def test_exact_symmetry_for_identical_datasets(self):
        pooled = make_classification_blobs(
            200, n_features=6, n_classes=3, cluster_std=2.0, seed=21
        )
        train, test = train_test_split(pooled, test_fraction=0.3, seed=21)
        clients = partition_iid(train, 3, seed=21)
        clients.append(clients[0].copy())  # client 3 duplicates client 0
        utility = CoalitionUtility(
            client_datasets=clients,
            test_dataset=test,
            model_factory=lambda: LogisticRegressionModel(n_features=6, n_classes=3, epochs=3),
            config=FLConfig(rounds=3, local_epochs=2),
            seed=21,
        )
        exact = MCShapley().run(utility).values
        # Symmetry holds only up to per-coalition training noise: {S ∪ {0}}
        # and {S ∪ {3}} are distinct coalitions training under independent
        # seeds, so train long enough (3 rounds × 2 epochs) that runs
        # converge and the noise stays well inside the tolerance.
        assert symmetry_error(exact, [[0, 3]]) < 0.35
