"""The example scripts must run end to end (they are part of the public API surface)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    path = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exit_info:  # CLI-style examples call sys.exit(main())
        assert exit_info.code in (0, None)
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "Exact MC-SV values" in output
        assert "Relative l2 error" in output

    def test_hospital_collaboration(self, capsys):
        run_example("hospital_collaboration.py")
        output = capsys.readouterr().out
        assert "Shapley share" in output
        assert "Payment split" in output

    def test_scheme_comparison(self, capsys):
        run_example("scheme_comparison.py")
        output = capsys.readouterr().out
        assert "MC-SV contribution variance" in output

    @pytest.mark.slow
    def test_noisy_client_detection(self, capsys):
        run_example("noisy_client_detection.py")
        output = capsys.readouterr().out
        assert "free rider" in output

    def test_reproduce_paper_cli_tiny_figure4(self, capsys):
        run_example("reproduce_paper.py", ["figure4", "--scale", "tiny"])
        output = capsys.readouterr().out
        assert "Fig. 4" in output
