"""Tests for the coalition-utility cache."""

import pytest

from repro.utils.cache import CacheStats, UtilityCache


def make_counting_evaluator():
    calls = []

    def evaluator(coalition):
        calls.append(coalition)
        return float(len(coalition))

    return evaluator, calls


class TestUtilityCache:
    def test_first_lookup_is_a_miss(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.utility({0, 1}) == 2.0
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_second_lookup_is_a_hit(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility({0, 1})
        cache.utility([1, 0])  # same coalition, different container/order
        assert len(calls) == 1
        assert cache.stats.hits == 1

    def test_call_and_utility_are_equivalent(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache({0}) == cache.utility({0})

    def test_evaluations_counts_distinct_coalitions(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        for coalition in [{0}, {1}, {0, 1}, {0}, {1}]:
            cache.utility(coalition)
        assert cache.evaluations == 3

    def test_prefetch(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.prefetch([{0}, {1}, {0, 1}])
        assert len(calls) == 3
        assert cache.contains({0, 1})

    def test_peek_does_not_evaluate(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.peek({0}) is None
        assert len(calls) == 0
        cache.utility({0})
        assert cache.peek({0}) == 1.0

    def test_clear_resets_everything(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility({0})
        cache.clear()
        assert len(cache) == 0
        assert cache.evaluations == 0

    def test_max_size_evicts_oldest(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator, max_size=2)
        cache.utility({0})
        cache.utility({1})
        cache.utility({2})  # evicts {0}
        assert len(cache) == 2
        assert not cache.contains({0})
        cache.utility({0})  # re-evaluated
        assert len(calls) == 4

    def test_hit_rate(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.stats.hit_rate == 0.0
        cache.utility({0})
        cache.utility({0})
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_empty_coalition_is_cacheable(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility(frozenset())
        cache.utility(set())
        assert len(calls) == 1


class TestCacheStats:
    def test_lookups_and_evaluations(self):
        stats = CacheStats(hits=3, misses=2)
        assert stats.lookups == 5
        assert stats.evaluations == 2
        assert stats.hit_rate == pytest.approx(0.6)
