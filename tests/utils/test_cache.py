"""Tests for the coalition-utility cache."""

import pytest

from repro.utils.cache import CacheStats, UtilityCache


def make_counting_evaluator():
    calls = []

    def evaluator(coalition):
        calls.append(coalition)
        return float(len(coalition))

    return evaluator, calls


class TestUtilityCache:
    def test_first_lookup_is_a_miss(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.utility({0, 1}) == 2.0
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_second_lookup_is_a_hit(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility({0, 1})
        cache.utility([1, 0])  # same coalition, different container/order
        assert len(calls) == 1
        assert cache.stats.hits == 1

    def test_call_and_utility_are_equivalent(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache({0}) == cache.utility({0})

    def test_evaluations_counts_distinct_coalitions(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        for coalition in [{0}, {1}, {0, 1}, {0}, {1}]:
            cache.utility(coalition)
        assert cache.evaluations == 3

    def test_prefetch(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.prefetch([{0}, {1}, {0, 1}])
        assert len(calls) == 3
        assert cache.contains({0, 1})

    def test_peek_does_not_evaluate(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.peek({0}) is None
        assert len(calls) == 0
        cache.utility({0})
        assert cache.peek({0}) == 1.0

    def test_clear_resets_everything(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility({0})
        cache.clear()
        assert len(cache) == 0
        assert cache.evaluations == 0

    def test_max_size_evicts_oldest(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator, max_size=2)
        cache.utility({0})
        cache.utility({1})
        cache.utility({2})  # evicts {0}
        assert len(cache) == 2
        assert not cache.contains({0})
        cache.utility({0})  # re-evaluated
        assert len(calls) == 4

    def test_hit_rate(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.stats.hit_rate == 0.0
        cache.utility({0})
        cache.utility({0})
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_empty_coalition_is_cacheable(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.utility(frozenset())
        cache.utility(set())
        assert len(calls) == 1


class TestEvictionSemantics:
    def test_re_evaluation_after_eviction_counts_again(self):
        """``evaluations`` models FL-training cost, not distinct coalitions:
        a coalition evicted from a bounded cache and revisited is retrained
        and the counter reflects that."""
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator, max_size=1)
        cache.utility({0})
        cache.utility({1})  # evicts {0}
        cache.utility({0})  # re-trained
        assert len(calls) == 3
        assert cache.evaluations == 3  # counts evaluator calls, not distinct
        distinct = {frozenset(c) for c in calls}
        assert len(distinct) == 2  # ... which here exceed the distinct count


class TestLookupStore:
    def test_lookup_counts_hit_when_present(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        assert cache.lookup({0}) is None
        assert cache.stats.hits == 0
        cache.utility({0})
        assert cache.lookup({0}) == 1.0
        assert cache.stats.hits == 1

    def test_store_counts_miss_and_feeds_later_hits(self):
        evaluator, calls = make_counting_evaluator()
        cache = UtilityCache(evaluator)
        cache.store({0, 1}, 0.75)
        assert calls == []  # value came from outside, evaluator untouched
        assert cache.evaluations == 1
        assert cache.utility({0, 1}) == 0.75
        assert cache.stats.hits == 1

    def test_store_respects_max_size(self):
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator, max_size=1)
        cache.store({0}, 1.0)
        cache.store({1}, 2.0)
        assert len(cache) == 1
        assert not cache.contains({0})

    def test_restoring_existing_key_neither_evicts_nor_recounts(self):
        """Two overlapping batches depositing the same coalition must not
        evict an unrelated entry from a full cache or inflate the counter."""
        evaluator, _ = make_counting_evaluator()
        cache = UtilityCache(evaluator, max_size=2)
        cache.store({0}, 1.0)
        cache.store({1}, 2.0)
        cache.store({1}, 2.0)  # duplicate deposit
        assert cache.contains({0})  # {0} survived
        assert cache.evaluations == 2
        assert cache.utility({1}) == 2.0


class TestThreadSafety:
    def test_concurrent_misses_are_single_flight(self):
        import threading
        import time

        calls = []
        lock = threading.Lock()

        def evaluator(coalition):
            with lock:
                calls.append(frozenset(coalition))
            time.sleep(0.005)
            return float(len(coalition))

        cache = UtilityCache(evaluator)
        results = []

        def worker():
            results.append(cache.utility({0, 1}))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1  # one training, seven waiters
        assert results == [2.0] * 8
        assert cache.stats.misses == 1
        assert cache.stats.hits == 7

    def test_failed_evaluation_releases_waiters(self):
        import threading

        attempts = []

        def evaluator(coalition):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return 1.0

        cache = UtilityCache(evaluator)
        with pytest.raises(RuntimeError):
            cache.utility({0})
        # The in-flight marker was cleaned up: the next call retries fresh.
        assert cache.utility({0}) == 1.0
        assert cache.stats.misses == 1


class TestCacheStats:
    def test_lookups_and_evaluations(self):
        stats = CacheStats(hits=3, misses=2)
        assert stats.lookups == 5
        assert stats.evaluations == 2
        assert stats.hit_rate == pytest.approx(0.6)
