"""Unit and property-based tests for coalition combinatorics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.combinatorics import (
    SAMPLING_ENUMERATION_LIMIT,
    all_coalitions,
    balanced_coalitions_of_size,
    client_appearance_counts,
    coalition_key,
    coalitions_of_size,
    count_coalitions_up_to,
    marginal_coefficient,
    max_fully_enumerable_size,
    n_choose_k,
    predecessors_in_permutation,
    random_coalition,
    random_coalition_of_size,
    random_permutation,
    sample_coalitions_of_size,
    stratum_sizes,
    unrank_combination,
)


class TestBinomials:
    def test_n_choose_k_matches_math_comb(self):
        for n in range(0, 12):
            for k in range(0, n + 1):
                assert n_choose_k(n, k) == math.comb(n, k)

    def test_n_choose_k_out_of_range_is_zero(self):
        assert n_choose_k(5, -1) == 0
        assert n_choose_k(5, 6) == 0
        assert n_choose_k(-1, 0) == 0

    def test_stratum_sizes_sum_to_power_of_two(self):
        for n in range(1, 10):
            assert sum(stratum_sizes(n)) == 2**n


class TestMarginalCoefficient:
    def test_three_clients_values(self):
        # n=3: coefficients 1/(3*C(2,k)) for k=0,1,2.
        assert marginal_coefficient(3, 0) == pytest.approx(1 / 3)
        assert marginal_coefficient(3, 1) == pytest.approx(1 / 6)
        assert marginal_coefficient(3, 2) == pytest.approx(1 / 3)

    def test_coefficients_sum_to_one_over_each_client(self):
        # Σ_{S ⊆ N\{i}} 1/(n·C(n−1,|S|)) = 1 for every n.
        for n in range(1, 10):
            total = sum(
                marginal_coefficient(n, k) * n_choose_k(n - 1, k) for k in range(n)
            )
            assert total == pytest.approx(1.0)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            marginal_coefficient(3, 3)
        with pytest.raises(ValueError):
            marginal_coefficient(3, -1)
        with pytest.raises(ValueError):
            marginal_coefficient(0, 0)


class TestEnumeration:
    def test_all_coalitions_count(self):
        assert len(list(all_coalitions(4))) == 16
        assert len(list(all_coalitions(4, include_empty=False))) == 15

    def test_all_coalitions_are_unique(self):
        coalitions = list(all_coalitions(5))
        assert len(coalitions) == len(set(coalitions))

    def test_all_coalitions_ordered_by_size(self):
        sizes = [len(c) for c in all_coalitions(4)]
        assert sizes == sorted(sizes)

    def test_coalitions_of_size(self):
        of_two = list(coalitions_of_size(4, 2))
        assert len(of_two) == 6
        assert all(len(c) == 2 for c in of_two)

    def test_coalitions_of_size_out_of_range(self):
        assert list(coalitions_of_size(4, 5)) == []
        assert list(coalitions_of_size(4, -1)) == []

    def test_count_coalitions_up_to(self):
        assert count_coalitions_up_to(4, 0) == 1
        assert count_coalitions_up_to(4, 1) == 5
        assert count_coalitions_up_to(4, 2) == 11
        assert count_coalitions_up_to(4, 4) == 16
        assert count_coalitions_up_to(4, 99) == 16


class TestKStar:
    def test_paper_example3(self):
        # Example 3: n=4, γ=10 → k* = 1 (1 + 4 = 5 ≤ 10 but 5 + 6 = 11 > 10).
        assert max_fully_enumerable_size(4, 10) == 1

    def test_budget_below_one(self):
        assert max_fully_enumerable_size(5, 0) == -1

    def test_budget_covers_everything(self):
        assert max_fully_enumerable_size(4, 16) == 4
        assert max_fully_enumerable_size(4, 1000) == 4

    def test_consistency_with_count(self):
        for n in range(2, 9):
            for budget in range(1, 2**n + 2):
                k_star = max_fully_enumerable_size(n, budget)
                assert count_coalitions_up_to(n, k_star) <= budget
                if k_star < n:
                    assert count_coalitions_up_to(n, k_star + 1) > budget


class TestSampling:
    def test_random_coalition_excludes(self, rng):
        for _ in range(30):
            coalition = random_coalition(6, rng, exclude=[2, 4])
            assert 2 not in coalition
            assert 4 not in coalition

    def test_random_coalition_of_size(self, rng):
        for size in range(0, 5):
            coalition = random_coalition_of_size(6, size, rng)
            assert len(coalition) == size
            assert all(0 <= c < 6 for c in coalition)

    def test_random_coalition_of_size_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            random_coalition_of_size(4, 4, rng, exclude=[0])

    def test_random_permutation_is_permutation(self, rng):
        permutation = random_permutation(7, rng)
        assert sorted(permutation) == list(range(7))

    def test_predecessors_in_permutation(self):
        assert predecessors_in_permutation((2, 0, 1), 1) == frozenset({2, 0})
        assert predecessors_in_permutation((2, 0, 1), 2) == frozenset()

    def test_predecessors_missing_client_raises(self):
        with pytest.raises(ValueError):
            predecessors_in_permutation((0, 1), 5)


class TestBalancedSampling:
    def test_returns_requested_count_when_possible(self, rng):
        sample = balanced_coalitions_of_size(6, 2, 6, rng)
        assert len(sample) == 6
        assert all(len(c) == 2 for c in sample)
        assert len(set(sample)) == len(sample)

    def test_returns_all_when_budget_exceeds_stratum(self, rng):
        sample = balanced_coalitions_of_size(4, 2, 100, rng)
        assert len(sample) == 6  # C(4, 2)

    def test_appearance_counts_balanced(self, rng):
        # Perfect balance is not always achievable once duplicates must be
        # avoided, but the greedy construction keeps the spread tiny compared
        # with the worst case (some client never sampled at all).
        sample = balanced_coalitions_of_size(8, 3, 8, rng)
        counts = client_appearance_counts(sample, 8)
        assert counts.max() - counts.min() <= 2
        assert counts.min() >= 1

    def test_degenerate_inputs(self, rng):
        assert balanced_coalitions_of_size(5, 0, 3, rng) == []
        assert balanced_coalitions_of_size(5, 6, 3, rng) == []
        assert balanced_coalitions_of_size(5, 2, 0, rng) == []

    def test_client_appearance_counts(self):
        counts = client_appearance_counts(
            [frozenset({0, 1}), frozenset({1, 2})], 4
        )
        assert counts.tolist() == [1, 2, 1, 0]


class TestUnranking:
    def test_matches_itertools_enumeration_order(self):
        for n in range(0, 9):
            for k in range(0, n + 1):
                expected = list(coalitions_of_size(n, k))
                unranked = [
                    unrank_combination(n, k, rank) for rank in range(len(expected))
                ]
                assert unranked == expected

    def test_out_of_range_rank_raises(self):
        with pytest.raises(ValueError):
            unrank_combination(5, 2, 10)  # C(5,2)=10, valid ranks 0..9
        with pytest.raises(ValueError):
            unrank_combination(5, 2, -1)

    def test_huge_stratum_without_enumeration(self):
        # C(500, 250) ≈ 10^149: unranking must not touch the stratum size.
        total = n_choose_k(500, 250)
        first = unrank_combination(500, 250, 0)
        last = unrank_combination(500, 250, total - 1)
        assert first == frozenset(range(250))
        assert last == frozenset(range(250, 500))


class TestSampleCoalitionsOfSize:
    def test_matches_legacy_choice_path_rng_stream(self, rng):
        # The pre-plan sampler enumerated small strata and indexed them with
        # one rng.choice call; the rank-based sampler must reproduce exactly
        # that stream so seeded runs (and their golden files) are unchanged.
        n, k, count = 10, 4, 7
        legacy_rng = np.random.default_rng(123)
        population = list(coalitions_of_size(n, k))
        picks = legacy_rng.choice(len(population), size=count, replace=False)
        legacy = [population[int(i)] for i in picks]
        new_rng = np.random.default_rng(123)
        assert sample_coalitions_of_size(n, k, new_rng, count) == legacy
        # And the generators end in the same state.
        assert legacy_rng.bit_generator.state == new_rng.bit_generator.state

    def test_full_stratum_returned_without_rng(self):
        rng = np.random.default_rng(0)
        state_before = rng.bit_generator.state
        sample = sample_coalitions_of_size(5, 2, rng, 10)
        assert set(sample) == set(coalitions_of_size(5, 2))
        assert rng.bit_generator.state == state_before

    def test_without_replacement_and_sized(self, rng):
        sample = sample_coalitions_of_size(8, 3, rng, 20)
        assert len(sample) == 20
        assert len(set(sample)) == 20
        assert all(len(c) == 3 for c in sample)

    def test_large_stratum_rejection_path(self, rng):
        # C(100, 3) = 161700 > SAMPLING_ENUMERATION_LIMIT: the rejection path
        # must still deliver distinct coalitions without enumerating.
        assert n_choose_k(100, 3) > SAMPLING_ENUMERATION_LIMIT
        sample = sample_coalitions_of_size(100, 3, rng, 50)
        assert len(sample) == 50
        assert len(set(sample)) == 50
        assert all(len(c) == 3 for c in sample)

    def test_invalid_arguments_raise(self, rng):
        with pytest.raises(ValueError):
            sample_coalitions_of_size(4, 5, rng, 1)
        with pytest.raises(ValueError):
            sample_coalitions_of_size(4, 2, rng, -1)
        assert sample_coalitions_of_size(4, 2, rng, 0) == []

    def test_roughly_uniform_over_small_stratum(self):
        # χ²-style sanity check: each of the C(5,2)=10 coalitions should be
        # hit roughly equally often across many independent draws.
        counts: dict = {}
        for seed in range(400):
            rng = np.random.default_rng(seed)
            for coalition in sample_coalitions_of_size(5, 2, rng, 3):
                counts[coalition] = counts.get(coalition, 0) + 1
        assert len(counts) == 10
        expected = 400 * 3 / 10
        assert all(0.5 * expected < c < 1.5 * expected for c in counts.values())


class TestCoalitionKey:
    def test_coalition_key_normalises_types(self):
        assert coalition_key([np.int64(1), 2]) == frozenset({1, 2})
        assert coalition_key(()) == frozenset()


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=10), budget=st.integers(min_value=1, max_value=1024))
def test_k_star_budget_property(n, budget):
    """The exhaustive part of IPSS never exceeds the budget."""
    k_star = max_fully_enumerable_size(n, budget)
    if k_star >= 0:
        assert count_coalitions_up_to(n, k_star) <= budget


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=9),
    size=st.integers(min_value=1, max_value=8),
    budget=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_balanced_sampling_properties(n, size, budget, seed):
    """Balanced phase-2 samples are unique, of the right size and near-balanced."""
    if size > n:
        size = n
    rng = np.random.default_rng(seed)
    sample = balanced_coalitions_of_size(n, size, budget, rng)
    assert len(sample) <= max(budget, math.comb(n, size))
    assert len(set(sample)) == len(sample)
    assert all(len(c) == size for c in sample)
    if 0 < len(sample) < math.comb(n, size):
        counts = client_appearance_counts(sample, n)
        # Perfect balance is impossible once most of the stratum is consumed
        # (the remaining coalitions are forced); require rough balance only.
        assert counts.max() - counts.min() <= 3
        assert counts.min() >= (len(sample) * size) // n - 3
