"""Tests for RNG handling, the stopwatch and argument validation."""

import time

import numpy as np
import pytest

from repro.utils.rng import RandomState, derive_seed, fixed_rng, spawn_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_client_count,
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
    check_same_length,
)


class TestRandomState:
    def test_int_seed_is_deterministic(self):
        a = RandomState(42).random(5)
        b = RandomState(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert RandomState(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(RandomState(None), np.random.Generator)

    def test_spawn_rng_children_differ(self):
        parent = RandomState(0)
        children = spawn_rng(parent, 3)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rng_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(RandomState(0), -1)

    def test_spawn_rng_zero(self):
        assert spawn_rng(RandomState(0), 0) == []

    def test_derive_seed_reproducible(self):
        assert derive_seed(RandomState(7)) == derive_seed(RandomState(7))

    def test_fixed_rng_defaults_to_zero(self):
        assert fixed_rng(None).random() == fixed_rng(0).random()


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running(self):
        timer = Timer()
        timer.start()
        assert timer.running
        assert timer.elapsed >= 0.0
        timer.stop()
        assert not timer.running

    def test_lap_records_labels(self):
        timer = Timer()
        timer.start()
        timer.lap("first")
        timer.stop()
        assert timer.laps[0][0] == "first"

    def test_reset(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_accumulates_across_start_stop(self):
        timer = Timer()
        timer.start()
        timer.stop()
        first = timer.elapsed
        timer.start()
        timer.stop()
        assert timer.elapsed >= first


class TestValidation:
    def test_check_positive(self):
        assert check_positive(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")

    def test_check_fraction_inclusive(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")

    def test_check_fraction_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)
        assert check_fraction(0.5, "x", inclusive=False) == 0.5

    def test_check_client_count(self):
        assert check_client_count(3) == 3
        with pytest.raises(ValueError):
            check_client_count(0)
        with pytest.raises(TypeError):
            check_client_count(2.5)

    def test_check_client_count_accepts_numpy_int(self):
        assert check_client_count(np.int64(4)) == 4

    def test_check_probability_vector(self):
        arr = check_probability_vector([0.25, 0.75], "p")
        assert arr.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 0.6], "p")
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1], "p")
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4], "a", "b")
        with pytest.raises(ValueError):
            check_same_length([1], [2, 3], "a", "b")
