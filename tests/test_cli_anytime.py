"""CLI surface of the anytime protocol: --stop-on, --json-stream, --progress,
--checkpoint-every."""

import json
import os

import pytest

from repro.cli import main

TASK_FLAGS = [
    "--task", "adult",
    "--model", "logistic",
    "--n-clients", "3",
    "--scale", "tiny",
    "--seed", "0",
    "--algorithms", "IPSS",
]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStopOn:
    def test_budget_rule_limits_evaluations(self, tmp_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "full"), *TASK_FLAGS, "--json",
        )
        full = json.loads(out)
        code, out, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "stopped"), *TASK_FLAGS,
            "--stop-on", "budget:2", "--json",
        )
        assert code == 0
        stopped = json.loads(out)
        assert stopped["fl_trainings"] < full["fl_trainings"]
        (row,) = [r for r in stopped["rows"] if r["status"] == "done"]
        assert row["evaluations"] < full["rows"][0]["evaluations"]

    def test_malformed_spec_is_a_clean_error(self, tmp_path, capsys):
        code, _, err = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "x"), *TASK_FLAGS,
            "--stop-on", "nonsense:3",
        )
        assert code == 2
        assert "stopping-rule" in err


class TestJsonStream:
    def test_stream_emits_snapshots_then_report(self, tmp_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "stream"), *TASK_FLAGS,
            "--json-stream",
        )
        assert code == 0
        events = [json.loads(line) for line in out.strip().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "report"
        snapshots = [event for event in events if event["event"] == "snapshot"]
        assert snapshots, "expected at least one snapshot event"
        assert snapshots[-1]["done"] is True
        assert snapshots[-1]["algorithm"] == "IPSS"
        assert {"task", "chunk", "evaluations", "values"} <= set(snapshots[0])
        # Evaluations are cumulative within the cell.
        evaluations = [s["evaluations"] for s in snapshots]
        assert evaluations == sorted(evaluations)

    def test_progress_goes_to_stderr(self, tmp_path, capsys):
        code, out, err = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "progress"), *TASK_FLAGS,
            "--progress",
        )
        assert code == 0
        assert "chunk 1" in err
        assert "chunk" not in out  # stdout stays the report table


class TestCheckpointFlag:
    def test_checkpoint_every_zero_leaves_no_state_files(self, tmp_path, capsys):
        run_dir = tmp_path / "nocp"
        code, _, _ = run_cli(
            capsys,
            "run", "--run-dir", str(run_dir), *TASK_FLAGS, "--checkpoint-every", "0",
            "--json",
        )
        assert code == 0
        assert not (run_dir / "checkpoints").exists()

    def test_completed_run_cleans_checkpoints(self, tmp_path, capsys):
        run_dir = tmp_path / "cp"
        code, _, _ = run_cli(
            capsys,
            "run", "--run-dir", str(run_dir), *TASK_FLAGS, "--json",
        )
        assert code == 0
        if (run_dir / "checkpoints").exists():
            assert os.listdir(run_dir / "checkpoints") == []
