"""Tests for the gradient-based baselines: DIG-FL, OR, λ-MR, GTG-Shapley.

These algorithms reconstruct coalition models from the recorded grand-coalition
training history instead of retraining, so the tests build one small real FL
federation and share it across the module.
"""

import numpy as np
import pytest

from repro.core import (
    DIGFL,
    GTGShapley,
    LambdaMR,
    MCShapley,
    ORBaseline,
    rank_correlation,
)
from repro.datasets import (
    Dataset,
    make_classification_blobs,
    partition_different_sizes,
    train_test_split,
)
from repro.fl import CoalitionUtility, FLConfig, TabularUtility
from repro.models import LogisticRegressionModel

N_CLIENTS = 4
GRADIENT_ALGORITHMS = [
    lambda: DIGFL(seed=0),
    lambda: ORBaseline(seed=0),
    lambda: LambdaMR(seed=0),
    lambda: GTGShapley(seed=0, permutations_per_round=4),
]


@pytest.fixture(scope="module")
def federation_utility():
    pooled = make_classification_blobs(
        240,
        n_features=6,
        n_classes=3,
        cluster_std=2.0,
        class_separation=2.0,
        seed=3,
    )
    train, test = train_test_split(pooled, test_fraction=0.25, seed=3)
    clients = partition_different_sizes(train, N_CLIENTS, seed=3)
    # The last client is a free rider with no data.
    clients[-1] = Dataset.empty_like(test, name="free-rider")
    return CoalitionUtility(
        client_datasets=clients,
        test_dataset=test,
        model_factory=lambda: LogisticRegressionModel(n_features=6, n_classes=3, epochs=3),
        config=FLConfig(rounds=3, local_epochs=1),
        seed=3,
    )


@pytest.fixture(scope="module")
def exact_values(federation_utility):
    return MCShapley().run(federation_utility, N_CLIENTS).values


class TestGradientBaselinesShared:
    @pytest.mark.parametrize("factory", GRADIENT_ALGORITHMS)
    def test_returns_one_value_per_client(self, federation_utility, factory):
        result = factory().run(federation_utility, N_CLIENTS)
        assert result.values.shape == (N_CLIENTS,)
        assert np.all(np.isfinite(result.values))

    @pytest.mark.parametrize("factory", GRADIENT_ALGORITHMS)
    def test_single_fl_training_only(self, federation_utility, factory):
        result = factory().run(federation_utility, N_CLIENTS)
        assert result.utility_evaluations == 1
        assert result.metadata["model_evaluations"] >= 1

    @pytest.mark.parametrize("factory", GRADIENT_ALGORITHMS)
    def test_rejects_plain_tabular_oracle(self, factory):
        oracle = TabularUtility.from_function(3, lambda s: float(len(s)))
        with pytest.raises(TypeError):
            factory().run(oracle, 3)

    @pytest.mark.parametrize("factory", GRADIENT_ALGORITHMS)
    def test_run_from_history_direct(self, federation_utility, factory):
        trainer = federation_utility.trainer
        history = trainer.grand_coalition_history()
        model = trainer.template_model()
        result = factory().run_from_history(history, model, trainer.test_dataset)
        assert result.values.shape == (N_CLIENTS,)


class TestORBaseline:
    def test_free_rider_not_most_valuable(self, federation_utility):
        result = ORBaseline(seed=0).run(federation_utility, N_CLIENTS)
        assert np.argmax(result.values) != N_CLIENTS - 1

    def test_rough_agreement_with_exact_ordering(self, federation_utility, exact_values):
        result = ORBaseline(seed=0).run(federation_utility, N_CLIENTS)
        assert rank_correlation(result.values, exact_values) > 0.0

    def test_too_many_clients_rejected(self):
        from repro.fl import ClientUpdate, RoundRecord, TrainingHistory

        history = TrainingHistory(initial_parameters=np.zeros(2))
        record = RoundRecord(round_index=0, global_before=np.zeros(2))
        for client in range(20):
            record.add_update(ClientUpdate(client, np.ones(2), 5))
        record.global_after = np.ones(2)
        history.add_round(record)
        with pytest.raises(ValueError):
            ORBaseline().run_from_history(history, None, None)


class TestLambdaMR:
    def test_decay_weights_normalised(self):
        algorithm = LambdaMR(decay=0.5)
        weights = algorithm._round_weights(4)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]

    def test_equal_weights_with_unit_decay(self):
        weights = LambdaMR(decay=1.0)._round_weights(5)
        assert np.allclose(weights, 0.2)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            LambdaMR(decay=0.0)

    def test_values_change_with_decay(self, federation_utility):
        flat = LambdaMR(decay=1.0, seed=0).run(federation_utility, N_CLIENTS).values
        steep = LambdaMR(decay=0.2, seed=0).run(federation_utility, N_CLIENTS).values
        assert not np.allclose(flat, steep)


class TestGTGShapley:
    def test_metadata_reports_truncation(self, federation_utility):
        result = GTGShapley(seed=0, permutations_per_round=3).run(
            federation_utility, N_CLIENTS
        )
        assert "rounds_skipped" in result.metadata
        assert result.metadata["permutations_per_round"] == 3

    def test_large_round_tolerance_skips_everything(self, federation_utility):
        result = GTGShapley(seed=0, round_tolerance=10.0).run(federation_utility, N_CLIENTS)
        assert np.allclose(result.values, 0.0)
        assert result.metadata["rounds_skipped"] >= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            GTGShapley(permutations_per_round=0)
        with pytest.raises(ValueError):
            GTGShapley(round_tolerance=-1.0)


class TestDIGFL:
    def test_rounds_scored_metadata(self, federation_utility):
        result = DIGFL(seed=0).run(federation_utility, N_CLIENTS)
        assert result.metadata["rounds_scored"] == 3

    def test_values_sum_close_to_total_round_gain(self, federation_utility):
        """DIG-FL distributes each round's utility gain across clients."""
        result = DIGFL(seed=0).run(federation_utility, N_CLIENTS)
        trainer = federation_utility.trainer
        history = trainer.grand_coalition_history()
        model = trainer.template_model()
        model.set_parameters(history.initial_parameters)
        initial = model.evaluate(trainer.test_dataset)
        model.set_parameters(history.rounds[-1].global_after)
        final = model.evaluate(trainer.test_dataset)
        assert result.values.sum() == pytest.approx(final - initial, abs=1e-6)
