"""Anytime-valuation protocol: parity, checkpoints, snapshots, stopping rules.

The load-bearing contract of the API redesign: for every registered
algorithm, the snapshot-stream ``iter_run`` consumed to exhaustion — with or
without a JSON checkpoint round-trip in the middle — produces values and
evaluation counts bitwise-identical to the monolithic pre-redesign ``run()``
(pinned by the committed golden file).
"""

import json
import os

import numpy as np
import pytest

from helpers import monotone_game
from repro.core import (
    AllOf,
    AnyOf,
    BudgetRule,
    CCShapley,
    CCShapleySampling,
    ConvergenceRule,
    EstimatorState,
    ExtendedGTB,
    ExtendedTMC,
    IPSS,
    KGreedy,
    MCShapley,
    PermShapley,
    StratifiedSampling,
    WallClockRule,
    parse_stopping_rule,
)
from repro.core.anytime import (
    ValuationSnapshot,
    capture_rng_state,
    decode_state_value,
    encode_state_value,
    restore_rng,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "data", "golden_run_values.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

N = GOLDEN["n_clients"]
GAMMA = GOLDEN["gamma"]
GAME_SEED = GOLDEN["game_seed"]


def golden_algorithms():
    """The exact line-up the golden file was generated with, in order."""
    from repro.core import BanzhafSampling, LeaveOneOut, RandomValuation

    return [
        MCShapley(seed=0),
        CCShapley(seed=0),
        PermShapley(seed=0),
        StratifiedSampling(total_rounds=GAMMA, scheme="mc", seed=0),
        StratifiedSampling(total_rounds=GAMMA, scheme="cc", seed=0),
        StratifiedSampling(total_rounds=GAMMA, scheme="mc", pair_on_demand=True, seed=0),
        KGreedy(max_size=2, seed=0),
        IPSS(total_rounds=GAMMA, seed=0),
        IPSS(total_rounds=GAMMA, include_partial_stratum=False, seed=0),
        ExtendedTMC(total_rounds=GAMMA, seed=0),
        ExtendedGTB(total_rounds=GAMMA, seed=0),
        CCShapleySampling(total_rounds=GAMMA, seed=0),
        CCShapleySampling(total_rounds=GAMMA, stratified=False, seed=0),
        BanzhafSampling(total_rounds=GAMMA, seed=0),
        LeaveOneOut(seed=0),
        RandomValuation(seed=0),
    ]


INCREMENTAL_FACTORIES = [
    pytest.param(lambda: MCShapley(seed=3), id="mc-shapley"),
    pytest.param(lambda: CCShapley(seed=3), id="cc-shapley-exact"),
    pytest.param(lambda: PermShapley(seed=3), id="perm-shapley"),
    pytest.param(
        lambda: StratifiedSampling(total_rounds=GAMMA, scheme="mc", seed=3),
        id="stratified-mc",
    ),
    pytest.param(
        lambda: StratifiedSampling(total_rounds=GAMMA, scheme="cc", seed=3),
        id="stratified-cc",
    ),
    pytest.param(
        lambda: StratifiedSampling(
            total_rounds=GAMMA, scheme="mc", pair_on_demand=True, seed=3
        ),
        id="stratified-pairs",
    ),
    pytest.param(lambda: KGreedy(max_size=3, seed=3), id="k-greedy"),
    pytest.param(lambda: IPSS(total_rounds=GAMMA, seed=3), id="ipss"),
    pytest.param(lambda: ExtendedTMC(total_rounds=GAMMA, seed=3), id="extended-tmc"),
    pytest.param(
        lambda: ExtendedGTB(total_rounds=GAMMA, chunk_rounds=3, seed=3), id="extended-gtb"
    ),
    pytest.param(
        lambda: CCShapleySampling(total_rounds=GAMMA, chunk_rounds=2, seed=3),
        id="cc-sampling",
    ),
]


class TestGoldenParity:
    """run() must be bitwise-identical to the pre-redesign implementation."""

    def test_values_and_evaluations_match_golden_file(self):
        for entry, algorithm in zip(GOLDEN["entries"], golden_algorithms()):
            utility = monotone_game(N, seed=GAME_SEED)
            result = algorithm.run(utility, N)
            assert result.algorithm == entry["name"]
            assert result.values.tolist() == entry["values"], entry["name"]
            assert result.utility_evaluations == entry["utility_evaluations"], entry["name"]


class TestIterRun:
    @pytest.mark.parametrize("factory", INCREMENTAL_FACTORIES)
    def test_exhausted_iter_run_equals_run(self, factory):
        reference = factory().run(monotone_game(N, seed=5), N)
        snapshots = list(factory().iter_run(monotone_game(N, seed=5), N))
        final = snapshots[-1]
        assert final.done
        assert final.values.tolist() == reference.values.tolist()
        assert final.evaluations == reference.utility_evaluations
        assert final.result().metadata == reference.metadata

    @pytest.mark.parametrize("factory", INCREMENTAL_FACTORIES)
    def test_snapshot_stream_is_monotone(self, factory):
        snapshots = list(factory().iter_run(monotone_game(N, seed=5), N))
        assert len(snapshots) >= 2, "incremental algorithms must chunk"
        chunks = [s.chunk_index for s in snapshots]
        assert chunks == list(range(1, len(snapshots) + 1))
        evaluations = [s.evaluations for s in snapshots]
        assert evaluations == sorted(evaluations)
        assert all(not s.done for s in snapshots[:-1])
        assert snapshots[-1].done
        for snapshot in snapshots:
            assert snapshot.values.shape == (N,)

    def test_incremental_flag(self):
        assert MCShapley.incremental
        assert IPSS.incremental
        from repro.core import LeaveOneOut

        assert not LeaveOneOut.incremental

    def test_single_chunk_adapter_for_unmigrated_algorithms(self):
        from repro.core import LeaveOneOut

        snapshots = list(LeaveOneOut(seed=0).iter_run(monotone_game(N, seed=5), N))
        assert len(snapshots) == 1
        assert snapshots[0].done
        assert snapshots[0].evaluations == N + 1

    def test_samplers_report_stderr(self):
        for factory in (
            lambda: StratifiedSampling(total_rounds=GAMMA, seed=3),
            lambda: ExtendedTMC(total_rounds=GAMMA, seed=3),
            lambda: CCShapleySampling(total_rounds=GAMMA, seed=3),
        ):
            final = list(factory().iter_run(monotone_game(N, seed=5), N))[-1]
            assert final.stderr is not None
            assert final.stderr.shape == (N,)
            # Defined stderrs are non-negative; single-sample contributions
            # are NaN (undefined), never a false-certainty zero.
            finite = np.isfinite(final.stderr)
            assert np.all(final.stderr[finite] >= 0)
            assert final.n_samples_per_client is not None
            ci = final.ci_halfwidth()
            assert np.allclose(
                ci[finite], 1.959963984540054 * final.stderr[finite]
            )

    def test_ci_rule_can_fire_once_strata_are_covered(self):
        # Exhaustive budget on n=4: every stratum is fully sampled, so every
        # client's stderr is defined and a generous CI rule fires — the
        # NaN-for-ignorance policy must not make CI stopping unreachable.
        final = list(
            StratifiedSampling(total_rounds=15, seed=0).iter_run(
                monotone_game(4, seed=1), 4
            )
        )[-1]
        assert np.all(np.isfinite(final.stderr))
        stopped = StratifiedSampling(total_rounds=15, seed=0).run(
            monotone_game(4, seed=1), 4,
            stopping_rule=ConvergenceRule(metric="ci", threshold=5.0, patience=1),
        )
        assert stopped.metadata.get("stopped_by") == "ci:5@1"
        cc_stopped = CCShapleySampling(total_rounds=64, seed=0).run(
            monotone_game(4, seed=1), 4,
            stopping_rule=ConvergenceRule(metric="ci", threshold=5.0, patience=1),
        )
        assert cc_stopped.metadata.get("stopped_by") == "ci:5@1"
        assert cc_stopped.utility_evaluations < 64

    def test_fully_enumerated_stratum_has_zero_variance_not_nan(self):
        from repro.core.anytime import stratified_stderr

        n = 4
        sums = np.zeros((n, n + 1))
        sumsq = np.zeros((n, n + 1))
        counts = np.zeros((n, n + 1))
        # One sample in the singleton stratum (population C(3,0)=1): defined.
        counts[:, 1] = 1
        assert np.all(np.isfinite(stratified_stderr(sums, sumsq, counts)))
        # One sample in the size-2 stratum (population C(3,1)=3): undefined.
        counts[:, 2] = 1
        assert np.all(np.isnan(stratified_stderr(sums, sumsq, counts)))

    def test_single_sample_strata_report_nan_stderr(self):
        # γ=24 over n=6 leaves several strata with exactly one sample: those
        # clients' stderrs must be NaN so CI rules can't stop on them.
        final = list(
            StratifiedSampling(total_rounds=GAMMA, seed=3).iter_run(
                monotone_game(N, seed=5), N
            )
        )[-1]
        assert np.any(~np.isfinite(final.stderr))
        # And the JSON stream maps them to null, keeping strict JSON.
        payload = final.to_dict()
        assert payload["max_ci95"] is None
        assert any(entry is None for entry in payload["stderr"])
        json.dumps(payload)

    def test_result_carries_stderr_fields(self):
        result = ExtendedTMC(total_rounds=GAMMA, seed=3).run(monotone_game(N, seed=5), N)
        assert result.stderr is not None
        assert result.n_samples_per_client is not None
        assert result.ci_halfwidth().shape == (N,)


class TestCheckpointResume:
    @pytest.mark.parametrize("factory", INCREMENTAL_FACTORIES)
    @pytest.mark.parametrize("stop_at", [1, 2, 4])
    def test_json_roundtrip_resume_is_bitwise_identical(self, factory, stop_at):
        reference = factory().run(monotone_game(N, seed=9), N)

        algorithm = factory()
        iterator = algorithm.iter_run(monotone_game(N, seed=9), N)
        snapshot = None
        for index, snapshot in enumerate(iterator, start=1):
            if index == stop_at or snapshot.done:
                break
        iterator.close()

        if snapshot.done:
            resumed = snapshot.result()
        else:
            blob = json.dumps(snapshot.state.to_dict())
            restored = EstimatorState.from_dict(json.loads(blob))
            fresh = factory()
            last = None
            for last in fresh.iter_run(monotone_game(N, seed=9), restored.n_clients, state=restored):
                pass
            resumed = last.result()
        assert resumed.values.tolist() == reference.values.tolist()

    def test_resume_accumulates_evaluations(self):
        algorithm = IPSS(total_rounds=GAMMA, seed=1)
        iterator = algorithm.iter_run(monotone_game(N, seed=2), N)
        first = next(iterator)
        iterator.close()
        assert first.evaluations > 0
        restored = EstimatorState.from_dict(json.loads(json.dumps(first.state.to_dict())))
        final = list(IPSS(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N, state=restored
        ))[-1]
        reference = IPSS(total_rounds=GAMMA, seed=1).run(monotone_game(N, seed=2), N)
        assert final.evaluations == reference.utility_evaluations

    def test_state_rejects_wrong_algorithm(self):
        snapshot = next(iter(IPSS(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N
        )))
        with pytest.raises(ValueError, match="does not match"):
            list(KGreedy(max_size=2, seed=1).iter_run(
                monotone_game(N, seed=2), N, state=snapshot.state
            ))

    def test_state_rejects_changed_config(self):
        snapshot = next(iter(IPSS(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N
        )))
        with pytest.raises(ValueError, match="does not match"):
            list(IPSS(total_rounds=GAMMA + 1, seed=1).iter_run(
                monotone_game(N, seed=2), N, state=snapshot.state
            ))

    def test_state_rejects_wrong_n_clients(self):
        snapshot = next(iter(ExtendedTMC(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N
        )))
        with pytest.raises(ValueError, match="does not match"):
            list(ExtendedTMC(total_rounds=GAMMA, seed=1).iter_run(
                monotone_game(N + 1, seed=2), N + 1, state=snapshot.state
            ))

    def test_done_state_yields_terminal_snapshot(self):
        final = list(IPSS(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N
        ))[-1]
        replayed = list(IPSS(total_rounds=GAMMA, seed=1).iter_run(
            monotone_game(N, seed=2), N, state=final.state
        ))
        assert len(replayed) == 1
        assert replayed[0].done
        assert replayed[0].values.tolist() == final.values.tolist()

    def test_gradient_based_rejects_state(self):
        from repro.core import ORBaseline

        with pytest.raises(ValueError, match="single-chunk"):
            list(ORBaseline(seed=0).iter_run(
                monotone_game(N, seed=2), N,
                state=EstimatorState(algorithm="OR", n_clients=N),
            ))


class TestStateSerialisation:
    def test_rng_state_roundtrip_continues_stream(self):
        rng = np.random.default_rng(123)
        rng.standard_normal(10)
        captured = json.loads(json.dumps(capture_rng_state(rng)))
        clone = restore_rng(captured)
        assert clone.standard_normal(5).tolist() == rng.standard_normal(5).tolist()

    def test_payload_codec_roundtrip(self):
        payload = {
            "array": np.arange(6, dtype=float).reshape(2, 3),
            "int_array": np.array([1, 2, 3]),
            "coalition": frozenset({0, 3}),
            "table": {frozenset(): 0.1, frozenset({1, 2}): 0.25},
            "per_stratum": {1: [frozenset({0})], 2: []},
            "rows": [np.zeros(3), np.ones(3)],
            "scalars": {"f": 0.1 + 0.2, "i": 7, "b": True, "none": None, "s": "x"},
        }
        decoded = decode_state_value(json.loads(json.dumps(encode_state_value(payload))))
        assert decoded["array"].tolist() == payload["array"].tolist()
        assert decoded["array"].dtype == payload["array"].dtype
        assert decoded["int_array"].dtype == payload["int_array"].dtype
        assert decoded["coalition"] == payload["coalition"]
        assert decoded["table"] == payload["table"]
        assert list(decoded["table"]) == list(payload["table"])  # order preserved
        assert decoded["per_stratum"] == payload["per_stratum"]
        assert decoded["scalars"] == payload["scalars"]

    def test_state_format_version_is_checked(self):
        state = EstimatorState(algorithm="x", n_clients=2).to_dict()
        state["state_format"] = 999
        with pytest.raises(ValueError, match="format"):
            EstimatorState.from_dict(state)


def _snapshot(values, evaluations=10, elapsed=1.0, stderr=None, n_samples=None, done=False):
    return ValuationSnapshot(
        algorithm="test",
        n_clients=len(values),
        values=np.asarray(values, dtype=float),
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        chunk_index=1,
        done=done,
        stderr=None if stderr is None else np.asarray(stderr, dtype=float),
        n_samples_per_client=(
            None if n_samples is None else np.asarray(n_samples, dtype=float)
        ),
    )


class TestStoppingRules:
    def test_budget_rule(self):
        rule = BudgetRule(16)
        assert not rule.should_stop(_snapshot([1, 2], evaluations=15))
        assert rule.should_stop(_snapshot([1, 2], evaluations=16))
        assert rule.fired == "budget:16"

    def test_wallclock_rule(self):
        rule = WallClockRule(2.0)
        assert not rule.should_stop(_snapshot([1, 2], elapsed=1.0))
        assert rule.should_stop(_snapshot([1, 2], elapsed=2.5))

    def test_ci_rule_needs_stderr_and_samples(self):
        rule = ConvergenceRule(metric="ci", threshold=0.1, patience=1)
        assert not rule.should_stop(_snapshot([1, 2]))  # no stderr -> never
        wide = _snapshot([1, 2], stderr=[1.0, 1.0], n_samples=[5, 5])
        assert not rule.should_stop(wide)
        narrow = _snapshot([1, 2], stderr=[0.01, 0.01], n_samples=[5, 5])
        assert rule.should_stop(narrow)
        rule.reset()
        starved = _snapshot([1, 2], stderr=[0.0, 0.0], n_samples=[1, 1])
        assert not rule.should_stop(starved)  # one sample is not certainty
        rule.reset()
        # NaN marks an undefined stderr (e.g. a single-sample stratum hiding
        # inside a many-sample client) — must block convergence too.
        undefined = _snapshot(
            [1, 2], stderr=[0.01, float("nan")], n_samples=[5, 5]
        )
        assert not rule.should_stop(undefined)

    def test_ci_rule_patience(self):
        rule = ConvergenceRule(metric="ci", threshold=0.1, patience=2)
        narrow = _snapshot([1, 2], stderr=[0.01, 0.01], n_samples=[5, 5])
        assert not rule.should_stop(narrow)
        assert rule.should_stop(narrow)

    def test_rank_rule(self):
        rule = ConvergenceRule(metric="rank", patience=2)
        assert not rule.should_stop(_snapshot([1.0, 2.0, 3.0]))
        assert not rule.should_stop(_snapshot([1.1, 2.1, 3.1]))  # streak 1
        assert rule.should_stop(_snapshot([1.2, 2.2, 3.2]))  # streak 2

    def test_rank_rule_resets_on_change(self):
        rule = ConvergenceRule(metric="rank", patience=2)
        rule.should_stop(_snapshot([1.0, 2.0]))
        rule.should_stop(_snapshot([1.0, 2.0]))  # streak 1
        assert not rule.should_stop(_snapshot([2.0, 1.0]))  # order flipped
        assert not rule.should_stop(_snapshot([2.0, 1.0]))
        assert rule.should_stop(_snapshot([2.0, 1.0]))

    def test_rank_rule_top_k_ignores_tail(self):
        rule = ConvergenceRule(metric="rank", patience=1, top_k=1)
        rule.should_stop(_snapshot([5.0, 1.0, 2.0]))
        assert rule.should_stop(_snapshot([5.0, 2.0, 1.0]))  # tail swap invisible

    def test_any_of_and_all_of(self):
        snapshot = _snapshot([1, 2], evaluations=20, elapsed=0.1)
        any_rule = AnyOf([BudgetRule(16), WallClockRule(100)])
        assert any_rule.should_stop(snapshot)
        assert "budget:16" in any_rule.fired
        all_rule = AllOf([BudgetRule(16), WallClockRule(100)])
        assert not all_rule.should_stop(snapshot)
        late = _snapshot([1, 2], evaluations=20, elapsed=200)
        assert all_rule.should_stop(late)

    def test_reset_clears_streaks(self):
        rule = ConvergenceRule(metric="rank", patience=1)
        rule.should_stop(_snapshot([1.0, 2.0]))
        rule.reset()
        assert not rule.should_stop(_snapshot([1.0, 2.0]))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BudgetRule(0)
        with pytest.raises(ValueError):
            WallClockRule(0)
        with pytest.raises(ValueError):
            ConvergenceRule(metric="ci")  # threshold required
        with pytest.raises(ValueError):
            ConvergenceRule(metric="nope")
        with pytest.raises(ValueError):
            AnyOf([])


class TestParseStoppingRule:
    def test_single_terms(self):
        assert isinstance(parse_stopping_rule("budget:64"), BudgetRule)
        assert isinstance(parse_stopping_rule("wallclock:1.5"), WallClockRule)
        ci = parse_stopping_rule("ci:0.05")
        assert isinstance(ci, ConvergenceRule) and ci.metric == "ci"
        assert ci.threshold == 0.05 and ci.patience == 2
        ci3 = parse_stopping_rule("ci:0.05@3")
        assert ci3.patience == 3
        rank = parse_stopping_rule("rank:4")
        assert rank.metric == "rank" and rank.patience == 4 and rank.top_k is None
        ranked = parse_stopping_rule("rank:2@top5")
        assert ranked.top_k == 5

    def test_comma_means_any_of(self):
        rule = parse_stopping_rule("budget:64,rank:2")
        assert isinstance(rule, AnyOf)
        assert len(rule.rules) == 2

    def test_describe_roundtrips(self):
        for spec in ("budget:64", "ci:0.05@3", "rank:2@top5", "rank:4", "wallclock:30"):
            rule = parse_stopping_rule(spec)
            again = parse_stopping_rule(rule.describe())
            assert again.describe() == rule.describe()
        # The composite and every constructible ConvergenceRule round-trip too
        # (describe() is recorded in metadata["stopped_by"] and shown to users).
        composite = parse_stopping_rule("budget:8,rank:2")
        assert parse_stopping_rule(composite.describe()).describe() == composite.describe()
        bare_rank = ConvergenceRule(metric="rank")
        assert parse_stopping_rule(bare_rank.describe()).describe() == bare_rank.describe()

    @pytest.mark.parametrize(
        "bad", ["", "budget", "budget:x", "nope:3", "rank:2@five", "ci:-1"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_stopping_rule(bad)


class TestEarlyStopRun:
    def test_budget_rule_saves_evaluations(self):
        full = IPSS(total_rounds=GAMMA, seed=0).run(monotone_game(N, seed=7), N)
        stopped = IPSS(total_rounds=GAMMA, seed=0).run(
            monotone_game(N, seed=7), N, stopping_rule=BudgetRule(8)
        )
        assert stopped.utility_evaluations < full.utility_evaluations
        assert stopped.metadata["stopped_early"] is True
        assert stopped.metadata["stopped_by"] == "budget:8"

    def test_rule_not_fired_leaves_metadata_clean(self):
        result = IPSS(total_rounds=GAMMA, seed=0).run(
            monotone_game(N, seed=7), N, stopping_rule=BudgetRule(10_000)
        )
        assert "stopped_early" not in result.metadata

    def test_on_snapshot_observes_every_chunk(self):
        seen = []
        result = IPSS(total_rounds=GAMMA, seed=0).run(
            monotone_game(N, seed=7), N, on_snapshot=seen.append
        )
        assert seen[-1].done
        assert seen[-1].evaluations == result.utility_evaluations
        assert len(seen) >= 2

    def test_rank_rule_stops_ipss_early_and_keeps_ranking(self):
        # Well-separated client values: the ranking settles early, so the
        # rank-stability rule prunes the tail of the partial stratum.
        from repro.fl import TabularUtility

        def separated_game():
            weights = np.linspace(0.1, 1.0, 10)
            total = weights.sum() ** 0.6

            def function(coalition):
                if not coalition:
                    return 0.1
                mass = sum(weights[i] for i in coalition) ** 0.6
                return 0.1 + 0.85 * mass / total

            return TabularUtility.from_function(10, function)

        full = IPSS(total_rounds=32, seed=0).run(separated_game(), 10)
        stopped = IPSS(total_rounds=32, seed=0).run(
            separated_game(), 10,
            stopping_rule=ConvergenceRule(metric="rank", patience=2),
        )
        assert stopped.utility_evaluations < full.utility_evaluations
        assert stopped.ranking().tolist() == full.ranking().tolist()
