"""ValuationResult: stderr/CI fields and the lossless JSON round-trip."""

import json
import os

import numpy as np
import pytest

from repro.core import ValuationResult

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_valuation_result.json"
)


def _tricky_result():
    # Values chosen to break any non-shortest-round-trip encoder: repeating
    # binary fractions, subnormal-adjacent magnitudes, negatives, zero.
    values = np.array([0.1 + 0.2, 1 / 3, -1e-17, 0.0, np.pi])
    return ValuationResult(
        values=values,
        algorithm="tricky",
        n_clients=5,
        utility_evaluations=7,
        elapsed_seconds=0.123456789012345678,
        metadata={"nested": {"a": [1, 2.5]}, "flag": False},
        stderr=np.array([1e-9, 0.25, 0.5, 0.0, 2.0]),
        n_samples_per_client=np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    )


class TestRoundTrip:
    def test_json_roundtrip_is_bitwise_lossless(self):
        original = _tricky_result()
        restored = ValuationResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored.values.tolist() == original.values.tolist()
        assert restored.stderr.tolist() == original.stderr.tolist()
        assert (
            restored.n_samples_per_client.tolist()
            == original.n_samples_per_client.tolist()
        )
        assert restored.algorithm == original.algorithm
        assert restored.n_clients == original.n_clients
        assert restored.utility_evaluations == original.utility_evaluations
        assert restored.elapsed_seconds == original.elapsed_seconds
        assert restored.metadata == original.metadata
        assert restored.ci_level == original.ci_level
        # And the round-trip is a fixed point: dumping again changes nothing.
        assert restored.to_dict() == original.to_dict()

    def test_none_fields_survive_roundtrip(self):
        result = ValuationResult(values=np.array([1.0, 2.0]), algorithm="x", n_clients=2)
        restored = ValuationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.stderr is None
        assert restored.n_samples_per_client is None
        assert restored.ci_halfwidth() is None

    def test_pre_anytime_payloads_still_load(self):
        # Results persisted before the anytime redesign lack the new keys.
        legacy = {
            "algorithm": "IPSS",
            "n_clients": 3,
            "values": [0.1, 0.2, 0.3],
            "utility_evaluations": 5,
            "elapsed_seconds": 0.5,
            "metadata": {},
        }
        restored = ValuationResult.from_dict(legacy)
        assert restored.stderr is None
        assert restored.values.tolist() == [0.1, 0.2, 0.3]

    def test_golden_file_decodes_exactly(self):
        # The golden file pins the on-disk checkpoint/result format: loading
        # it and re-encoding must reproduce the committed bytes' payload.
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        restored = ValuationResult.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.algorithm == "golden-algo"
        assert restored.stderr is not None and restored.stderr.shape == (5,)


class TestValidationAndCI:
    def test_stderr_shape_is_validated(self):
        with pytest.raises(ValueError, match="stderr"):
            ValuationResult(
                values=np.array([1.0, 2.0]),
                algorithm="x",
                n_clients=2,
                stderr=np.array([0.1]),
            )

    def test_n_samples_shape_is_validated(self):
        with pytest.raises(ValueError, match="n_samples_per_client"):
            ValuationResult(
                values=np.array([1.0, 2.0]),
                algorithm="x",
                n_clients=2,
                n_samples_per_client=np.zeros(3),
            )

    def test_ci_halfwidth_uses_level(self):
        result = ValuationResult(
            values=np.array([1.0, 2.0]),
            algorithm="x",
            n_clients=2,
            stderr=np.array([1.0, 2.0]),
        )
        ci95 = result.ci_halfwidth()
        assert np.allclose(ci95, 1.959963984540054 * result.stderr)
        ci99 = result.ci_halfwidth(level=0.99)
        assert np.all(ci99 > ci95)
