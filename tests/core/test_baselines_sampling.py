"""Tests for the sampling-based baselines: Extended-TMC, Extended-GTB, CC-Shapley."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CCShapleySampling,
    ExtendedGTB,
    ExtendedTMC,
    MCShapley,
    relative_error_l2,
)

from tests.helpers import monotone_game


class TestExtendedTMC:
    def test_reasonable_estimate_with_generous_budget(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        estimate = ExtendedTMC(total_rounds=200, truncation_tolerance=0.0, seed=0).run(
            monotone_game_5, 5
        )
        assert relative_error_l2(estimate.values, exact) < 0.25

    def test_budget_respected(self, monotone_game_8):
        result = ExtendedTMC(total_rounds=20, seed=0).run(monotone_game_8, 8)
        assert result.utility_evaluations <= 20

    def test_truncation_reduces_evaluations(self):
        game = monotone_game(6, seed=4, concavity=0.1)  # saturates fast
        loose = ExtendedTMC(total_rounds=60, truncation_tolerance=0.2, max_permutations=5, seed=0)
        strict = ExtendedTMC(total_rounds=60, truncation_tolerance=0.0, max_permutations=5, seed=0)
        loose_result = loose.run(game, 6)
        strict_result = strict.run(game, 6)
        assert loose_result.utility_evaluations <= strict_result.utility_evaluations
        assert loose_result.metadata["truncations"] >= 1

    def test_metadata_counts_permutations(self, monotone_game_5):
        result = ExtendedTMC(total_rounds=30, seed=0).run(monotone_game_5, 5)
        assert result.metadata["permutations_used"] >= 1

    def test_deterministic_given_seed(self, monotone_game_5):
        a = ExtendedTMC(total_rounds=25, seed=9).run(monotone_game_5, 5).values
        b = ExtendedTMC(total_rounds=25, seed=9).run(monotone_game_5, 5).values
        assert np.allclose(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ExtendedTMC(total_rounds=1)
        with pytest.raises(ValueError):
            ExtendedTMC(truncation_tolerance=-0.1)

    def test_values_finite_under_tiny_budget(self, monotone_game_8):
        result = ExtendedTMC(total_rounds=3, seed=0).run(monotone_game_8, 8)
        assert np.all(np.isfinite(result.values))


class TestExtendedGTB:
    def test_reasonable_estimate_with_generous_budget(self, monotone_game_5):
        # Group testing converges noticeably slower than the other samplers
        # (it estimates pairwise differences first), hence the loose bound.
        exact = MCShapley().run(monotone_game_5, 5).values
        estimate = ExtendedGTB(total_rounds=600, seed=0).run(monotone_game_5, 5)
        assert relative_error_l2(estimate.values, exact) < 0.4

    def test_efficiency_constraint_holds(self, monotone_game_5):
        """GTB solutions satisfy Σφ = U(N) − U(∅) by construction."""
        result = ExtendedGTB(total_rounds=40, seed=0).run(monotone_game_5, 5)
        total = monotone_game_5(frozenset(range(5))) - monotone_game_5(frozenset())
        assert result.values.sum() == pytest.approx(total, abs=1e-9)

    def test_budget_respected(self, monotone_game_8):
        result = ExtendedGTB(total_rounds=25, seed=0).run(monotone_game_8, 8)
        assert result.utility_evaluations <= 25

    def test_single_client(self):
        game = monotone_game(1, seed=0)
        result = ExtendedGTB(total_rounds=4, seed=0).run(game, 1)
        expected = game(frozenset({0})) - game(frozenset())
        assert result.values[0] == pytest.approx(expected)

    def test_size_distribution_normalised(self):
        probabilities = ExtendedGTB._size_distribution(8)
        assert probabilities.shape == (7,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ExtendedGTB(total_rounds=3)

    def test_deterministic_given_seed(self, monotone_game_5):
        a = ExtendedGTB(total_rounds=30, seed=2).run(monotone_game_5, 5).values
        b = ExtendedGTB(total_rounds=30, seed=2).run(monotone_game_5, 5).values
        assert np.allclose(a, b)


class TestCCShapleySampling:
    def test_reasonable_estimate_with_generous_budget(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        estimate = CCShapleySampling(total_rounds=300, seed=0).run(monotone_game_5, 5)
        assert relative_error_l2(estimate.values, exact) < 0.3

    def test_single_round_informs_every_client(self, monotone_game_5):
        """One complementary pair yields a contribution sample for all clients."""
        result = CCShapleySampling(total_rounds=2, seed=0).run(monotone_game_5, 5)
        assert np.count_nonzero(result.values) == 5

    def test_budget_respected(self, monotone_game_8):
        result = CCShapleySampling(total_rounds=15, seed=0).run(monotone_game_8, 8)
        assert result.utility_evaluations <= 15

    def test_non_stratified_mode(self, monotone_game_5):
        result = CCShapleySampling(total_rounds=30, stratified=False, seed=1).run(
            monotone_game_5, 5
        )
        assert np.all(np.isfinite(result.values))
        assert result.metadata["stratified"] is False

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            CCShapleySampling(total_rounds=1)

    def test_deterministic_given_seed(self, monotone_game_5):
        a = CCShapleySampling(total_rounds=20, seed=7).run(monotone_game_5, 5).values
        b = CCShapleySampling(total_rounds=20, seed=7).run(monotone_game_5, 5).values
        assert np.allclose(a, b)


class TestBudgetParity:
    """All sampling baselines respect the same γ, as configured in the paper."""

    @pytest.mark.parametrize("gamma", [8, 16, 32])
    def test_all_respect_budget(self, monotone_game_8, gamma):
        from repro.core import IPSS

        for algorithm in (
            ExtendedTMC(total_rounds=gamma, seed=0),
            ExtendedGTB(total_rounds=gamma, seed=0),
            CCShapleySampling(total_rounds=gamma, seed=0),
            IPSS(total_rounds=gamma, seed=0),
        ):
            result = algorithm.run(monotone_game_8, 8)
            assert result.utility_evaluations <= gamma, algorithm.name

    def test_ipss_most_accurate_on_saturating_game(self):
        """The paper's headline comparison under a shared tight budget."""
        game = monotone_game(8, seed=5, concavity=0.15)
        exact = MCShapley().run(game, 8).values
        gamma = 32
        from repro.core import IPSS

        errors = {}
        for algorithm in (
            ExtendedTMC(total_rounds=gamma, seed=3),
            ExtendedGTB(total_rounds=gamma, seed=3),
            CCShapleySampling(total_rounds=gamma, seed=3),
            IPSS(total_rounds=gamma, seed=3),
        ):
            result = algorithm.run(game, 8)
            errors[result.algorithm] = relative_error_l2(result.values, exact)
        assert errors["IPSS"] == min(errors.values())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200), gamma=st.integers(min_value=4, max_value=40))
def test_sampling_baselines_always_finite(seed, gamma):
    """No baseline ever emits NaN/inf, whatever the seed or budget."""
    game = monotone_game(6, seed=seed)
    for algorithm in (
        ExtendedTMC(total_rounds=max(gamma, 2), seed=seed),
        ExtendedGTB(total_rounds=max(gamma, 4), seed=seed),
        CCShapleySampling(total_rounds=max(gamma, 2), seed=seed),
    ):
        values = algorithm.run(game, 6).values
        assert np.all(np.isfinite(values))
