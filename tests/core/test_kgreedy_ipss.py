"""Tests for K-Greedy (Alg. 2) and IPSS (Alg. 3) — the paper's contributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IPSS, KGreedy, MCShapley, relative_error_l2
from repro.fl import TabularUtility
from repro.utils.combinatorics import count_coalitions_up_to

from tests.helpers import monotone_game


class TestKGreedy:
    def test_full_k_recovers_exact(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        estimate = KGreedy(max_size=5, seed=0).run(monotone_game_5, 5).values
        assert relative_error_l2(estimate, exact) < 1e-9

    def test_error_decreases_with_k(self, monotone_game_8):
        """The key-combinations phenomenon: error shrinks (weakly) as K grows."""
        exact = MCShapley().run(monotone_game_8, 8).values
        errors = []
        for k in range(1, 9):
            estimate = KGreedy(max_size=k).run(monotone_game_8, 8).values
            errors.append(relative_error_l2(estimate, exact))
        assert errors[-1] < 1e-9
        # Overall trend is decreasing: later errors never exceed the first.
        assert max(errors[1:]) <= errors[0] + 1e-12
        assert errors[3] <= errors[1] + 1e-12

    def test_small_k_already_accurate_on_saturating_games(self):
        """The key-combinations phenomenon: on a strongly saturating
        (accuracy-like) utility, coalitions of at most 3 clients suffice."""
        game = monotone_game(8, seed=2, concavity=0.15)
        exact = MCShapley().run(game, 8).values
        estimate = KGreedy(max_size=3).run(game, 8).values
        assert relative_error_l2(estimate, exact) < 0.2

    def test_evaluations_match_formula(self, monotone_game_5):
        algorithm = KGreedy(max_size=2)
        result = algorithm.run(monotone_game_5, 5)
        expected = count_coalitions_up_to(5, 2)
        assert result.utility_evaluations == expected
        assert algorithm.evaluations_required(5) == expected

    def test_k_larger_than_n_is_capped(self, monotone_game_5):
        estimate = KGreedy(max_size=99).run(monotone_game_5, 5).values
        exact = MCShapley().run(monotone_game_5, 5).values
        assert np.allclose(estimate, exact, atol=1e-9)

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KGreedy(max_size=0)

    def test_name_includes_k(self):
        assert "K=3" in KGreedy(max_size=3).name


class TestIPSSBudgeting:
    def test_k_star_matches_paper_example3(self):
        assert IPSS(total_rounds=10).k_star(4) == 1

    def test_budget_never_exceeded(self, monotone_game_8):
        for gamma in (5, 9, 17, 40, 93):
            result = IPSS(total_rounds=gamma, seed=0).run(monotone_game_8, 8)
            assert result.utility_evaluations <= gamma

    def test_budget_nearly_exhausted(self, monotone_game_8):
        """IPSS should spend (almost) the whole budget, not leave it idle."""
        result = IPSS(total_rounds=40, seed=0).run(monotone_game_8, 8)
        assert result.utility_evaluations >= 35

    def test_sampling_plan_consistency(self):
        plan = IPSS(total_rounds=32).sampling_plan(10)
        assert plan["k_star"] == 1
        assert plan["exhaustive_evaluations"] == 11
        assert plan["partial_budget"] == 21
        assert plan["partial_stratum_size"] == 2

    def test_budget_of_one_only_covers_empty_coalition(self, monotone_game_5):
        # Budget of exactly 1 only fits the empty coalition -> k*=0 and the
        # estimate degenerates to (almost) nothing, but it must not crash.
        algorithm = IPSS(total_rounds=1, include_partial_stratum=False)
        assert algorithm.k_star(5) == 0
        result = algorithm.run(monotone_game_5, 5)
        assert result.utility_evaluations <= 1

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            IPSS(total_rounds=0)


class TestIPSSAccuracy:
    def test_full_budget_recovers_exact(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        estimate = IPSS(total_rounds=2**5, seed=0).run(monotone_game_5, 5).values
        assert relative_error_l2(estimate, exact) < 1e-9

    def test_partial_budget_is_accurate_on_saturating_games(self):
        """IPSS under ~15% of the full budget on an accuracy-like utility."""
        game = monotone_game(8, seed=2, concavity=0.15)
        exact = MCShapley().run(game, 8).values
        estimate = IPSS(total_rounds=40, seed=0).run(game, 8).values
        assert relative_error_l2(estimate, exact) < 0.25

    def test_moderately_concave_games_have_larger_truncation_error(self, monotone_game_8):
        """The flip side of key combinations: when the utility keeps growing
        with coalition size, truncation costs more accuracy (still bounded)."""
        exact = MCShapley().run(monotone_game_8, 8).values
        estimate = IPSS(total_rounds=40, seed=0).run(monotone_game_8, 8).values
        assert relative_error_l2(estimate, exact) < 0.8

    def test_beats_same_budget_without_partial_stratum(self, monotone_game_8):
        """Ablation: the (k*+1) phase-2 samples should not hurt accuracy."""
        exact = MCShapley().run(monotone_game_8, 8).values
        with_partial = IPSS(total_rounds=20, include_partial_stratum=True, seed=0)
        without_partial = IPSS(total_rounds=20, include_partial_stratum=False, seed=0)
        error_with = relative_error_l2(with_partial.run(monotone_game_8, 8).values, exact)
        error_without = relative_error_l2(without_partial.run(monotone_game_8, 8).values, exact)
        assert error_with <= error_without + 0.05

    def test_paper_table1_with_full_budget(self, table1_utility, table1_exact_values):
        estimate = IPSS(total_rounds=8, seed=0).run(table1_utility, 3).values
        assert np.allclose(estimate, table1_exact_values, atol=0.005)

    def test_error_shrinks_with_budget(self):
        game = monotone_game(8, seed=9)
        exact = MCShapley().run(game, 8).values
        small_budget = relative_error_l2(IPSS(total_rounds=9, seed=1).run(game, 8).values, exact)
        large_budget = relative_error_l2(IPSS(total_rounds=120, seed=1).run(game, 8).values, exact)
        assert large_budget <= small_budget + 1e-9

    def test_metadata_reports_k_star(self, monotone_game_8):
        result = IPSS(total_rounds=40, seed=0).run(monotone_game_8, 8)
        assert result.metadata["k_star"] == 2
        assert result.metadata["partial_stratum_samples"] >= 0

    def test_deterministic_given_seed(self, monotone_game_8):
        a = IPSS(total_rounds=20, seed=5).run(monotone_game_8, 8).values
        b = IPSS(total_rounds=20, seed=5).run(monotone_game_8, 8).values
        assert np.allclose(a, b)

    def test_null_player_value_zero(self):
        """No-free-riders: a client that never changes utility gets value ~0."""

        def function(coalition):
            useful = coalition - {3}
            return 0.1 + 0.2 * len(useful)

        oracle = TabularUtility.from_function(5, function)
        values = IPSS(total_rounds=16, seed=0).run(oracle, 5).values
        assert abs(values[3]) < 1e-9

    def test_symmetric_clients_get_close_values(self):
        """Balanced phase-2 sampling keeps symmetric clients' estimates close."""

        def function(coalition):
            return 0.1 + 0.15 * len(coalition)  # fully symmetric game

        oracle = TabularUtility.from_function(6, function)
        values = IPSS(total_rounds=15, seed=0).run(oracle, 6).values
        assert values.max() - values.min() < 0.05


class TestIPSSOnLinearTheoryModel:
    def test_accuracy_on_donahue_kleinberg_utilities(self, linear_theory_utility):
        """IPSS on the closed-form linear-regression utility (Lemma 1 setting)."""
        exact = MCShapley().run(linear_theory_utility, 6).values
        estimate = IPSS(total_rounds=10, seed=0).run(linear_theory_utility, 6).values
        assert relative_error_l2(estimate, exact) < 0.1


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    gamma=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=300),
)
def test_ipss_budget_and_finiteness_property(n, gamma, seed):
    """IPSS never exceeds its budget and always returns finite values."""
    game = monotone_game(n, seed=seed)
    result = IPSS(total_rounds=gamma, seed=seed).run(game, n)
    assert result.utility_evaluations <= gamma
    assert np.all(np.isfinite(result.values))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_ipss_with_full_budget_matches_exact_property(seed):
    """With γ = 2^n IPSS degenerates to the exact MC-SV."""
    game = monotone_game(5, seed=seed)
    exact = MCShapley().run(game, 5).values
    estimate = IPSS(total_rounds=32, seed=seed).run(game, 5).values
    assert np.allclose(estimate, exact, atol=1e-9)


class TestIPSSRemainingUncertainty:
    """Phase-2 stderr: convergence-to-plan residual feeding CI-based stopping."""

    def _snapshots(self, n=8, gamma=60, chunk=2, seed=3):
        game = monotone_game(n, seed=seed)
        algorithm = IPSS(total_rounds=gamma, partial_chunk_size=chunk, seed=seed)
        return list(algorithm.iter_run(game, n))

    def test_phase1_chunks_report_no_stderr(self):
        snapshots = self._snapshots()
        phase2_started = False
        for snapshot in snapshots:
            if snapshot.stderr is None:
                assert not phase2_started, "stderr must not vanish once phase 2 runs"
            else:
                phase2_started = True
        assert phase2_started

    def test_final_snapshot_residual_is_exactly_zero(self):
        final = self._snapshots()[-1]
        assert final.done
        assert final.stderr is not None
        np.testing.assert_array_equal(final.stderr, np.zeros(8))

    def test_midrun_residual_shrinks_to_zero_without_false_certainty(self):
        snapshots = [s for s in self._snapshots() if s.stderr is not None]
        assert len(snapshots) >= 2
        first, last = snapshots[0], snapshots[-1]
        # Mid-run every entry is a residual (finite >= 0) or NaN (ignorance:
        # fewer than two evaluated marginals while appearances remain) —
        # never a negative or infinite value.
        for snapshot in snapshots:
            finite = snapshot.stderr[np.isfinite(snapshot.stderr)]
            assert np.all(finite >= 0.0)
            assert not np.any(np.isinf(snapshot.stderr))
        # The summed residual is monotonically consumed as the plan drains.
        assert np.nansum(last.stderr) <= np.nansum(first.stderr) + 1e-12

    def test_values_and_counts_are_unchanged_by_the_stderr_channel(self):
        # The residual is an additional reporting channel: the value fold and
        # sample counts must match a plain run bitwise.
        game = monotone_game(8, seed=3)
        reference = IPSS(total_rounds=60, seed=3).run(game, 8)
        final = self._snapshots(n=8, gamma=60, chunk=2, seed=3)[-1]
        np.testing.assert_array_equal(final.values, reference.values)

    def test_convergence_rule_can_stop_ipss(self):
        from repro.core.anytime import ConvergenceRule

        game = monotone_game(8, seed=3)
        algorithm = IPSS(total_rounds=60, partial_chunk_size=2, seed=3)
        rule = ConvergenceRule(metric="ci", threshold=1e6, patience=1)
        result = algorithm.run(game, 8, stopping_rule=rule)
        assert result.metadata["stopped_by"] == rule.describe()
        # A huge threshold fires on the first phase-2 snapshot whose stderr
        # is defined for every client, so trainings were genuinely saved.
        full = IPSS(total_rounds=60, partial_chunk_size=2, seed=3).run(game, 8)
        assert result.utility_evaluations < full.utility_evaluations

    def test_convergence_rule_never_fires_during_phase1(self):
        from repro.core.anytime import ConvergenceRule

        game = monotone_game(8, seed=3)
        algorithm = IPSS(total_rounds=9, seed=3)  # k*=1, no leftover → no phase 2
        assert not algorithm._has_partial_phase(8, algorithm.k_star(8))
        rule = ConvergenceRule(metric="ci", threshold=1e6, patience=1)
        result = algorithm.run(game, 8, stopping_rule=rule)
        assert "stopped_by" not in result.metadata
