"""Tests for valuation metrics, the closed-form theory and variance analysis."""

import numpy as np
import pytest

from repro.core import (
    MCShapley,
    contribution_variance,
    efficiency_gap,
    empirical_scheme_variance,
    fairness_proxy_error,
    max_absolute_error,
    null_player_error,
    rank_correlation,
    relative_error_l2,
    symmetry_error,
    theoretical_variance_cc,
    theoretical_variance_mc,
    theory,
)
from repro.core.result import ValuationResult
from repro.fl import TabularUtility

from tests.helpers import monotone_game


class TestErrorMetrics:
    def test_relative_error_zero_for_identical(self):
        values = np.array([0.1, 0.2, 0.3])
        assert relative_error_l2(values, values) == 0.0

    def test_relative_error_known_value(self):
        exact = np.array([3.0, 4.0])  # norm 5
        estimated = np.array([3.0, 3.0])  # difference norm 1
        assert relative_error_l2(estimated, exact) == pytest.approx(0.2)

    def test_relative_error_zero_ground_truth(self):
        assert relative_error_l2(np.array([0.1, 0.0]), np.zeros(2)) == pytest.approx(0.1)

    def test_relative_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error_l2(np.zeros(2), np.zeros(3))

    def test_max_absolute_error(self):
        assert max_absolute_error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5

    def test_rank_correlation_perfect_and_reversed(self):
        exact = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_correlation(exact, exact) == pytest.approx(1.0)
        assert rank_correlation(exact[::-1], exact) == pytest.approx(-1.0)

    def test_rank_correlation_single_element(self):
        assert rank_correlation(np.array([1.0]), np.array([2.0])) == 1.0

    def test_rank_correlation_constant_input(self):
        assert rank_correlation(np.ones(4), np.arange(4.0)) == 0.0


class TestFairnessProxies:
    def test_null_player_error_zero_when_nulls_are_zero(self):
        values = np.array([0.5, 0.0, 0.3])
        assert null_player_error(values, [1]) == 0.0

    def test_null_player_error_positive_when_nulls_nonzero(self):
        values = np.array([0.5, 0.2, 0.3])
        assert null_player_error(values, [1]) > 0.0

    def test_null_player_error_no_nulls(self):
        assert null_player_error(np.array([0.5, 0.2]), []) == 0.0

    def test_symmetry_error_zero_for_equal_duplicates(self):
        values = np.array([0.4, 0.4, 0.2])
        assert symmetry_error(values, [[0, 1]]) == 0.0

    def test_symmetry_error_positive_for_unequal_duplicates(self):
        values = np.array([0.4, 0.1, 0.2])
        assert symmetry_error(values, [[0, 1]]) > 0.0

    def test_symmetry_error_ignores_singleton_groups(self):
        assert symmetry_error(np.array([0.4, 0.1]), [[0]]) == 0.0

    def test_fairness_proxy_combines_both(self):
        values = np.array([0.4, 0.1, 0.3, 0.0])
        combined = fairness_proxy_error(values, [3], [[0, 1]])
        assert combined == pytest.approx(
            null_player_error(values, [3]) + symmetry_error(values, [[0, 1]])
        )

    def test_efficiency_gap(self):
        values = np.array([0.2, 0.3])
        assert efficiency_gap(values, grand_utility=0.9, empty_utility=0.3) == pytest.approx(0.1)


class TestValuationResult:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ValuationResult(values=np.zeros(3), algorithm="x", n_clients=4)

    def test_ranking_and_value_of(self):
        result = ValuationResult(values=np.array([0.1, 0.5, 0.3]), algorithm="x", n_clients=3)
        assert result.ranking().tolist() == [1, 2, 0]
        assert result.value_of(1) == 0.5

    def test_normalized_sums_to_one(self):
        result = ValuationResult(values=np.array([1.0, 3.0]), algorithm="x", n_clients=2)
        assert result.normalized().sum() == pytest.approx(1.0)

    def test_normalized_zero_sum_returns_raw(self):
        result = ValuationResult(values=np.array([0.5, -0.5]), algorithm="x", n_clients=2)
        assert np.allclose(result.normalized(), [0.5, -0.5])

    def test_to_dict_roundtrip_fields(self):
        result = ValuationResult(values=np.zeros(2), algorithm="x", n_clients=2)
        data = result.to_dict()
        assert data["algorithm"] == "x"
        assert data["values"] == [0.0, 0.0]


class TestTheory:
    def test_expected_mse_decreases_with_samples(self):
        small = theory.expected_mse(20, n_features=5, noise_mean=1.0)
        large = theory.expected_mse(200, n_features=5, noise_mean=1.0)
        assert large < small

    def test_expected_mse_requires_enough_samples(self):
        with pytest.raises(ValueError):
            theory.expected_mse(5, n_features=5, noise_mean=1.0)

    def test_lemma1_value_positive_for_reasonable_setup(self):
        value = theory.lemma1_expected_value(
            n_clients=10, samples_per_client=100, n_features=5, noise_mean=1.0, initial_mse=10.0
        )
        assert value > 0.0

    def test_lemma1_value_decreases_with_more_clients(self):
        few = theory.lemma1_expected_value(3, 100, 5, 1.0, 10.0)
        many = theory.lemma1_expected_value(30, 100, 5, 1.0, 10.0)
        assert many < few

    def test_truncated_expectation_below_full(self):
        full = theory.lemma1_expected_value(10, 100, 5, 1.0, 10.0)
        truncated = theory.truncated_expected_value(2, 10, 100, 5, 1.0, 10.0)
        assert truncated <= full

    def test_theorem3_bound_decreases_with_k_star(self):
        loose = theory.theorem3_relative_error_bound(10, 1, 100, 5)
        tight = theory.theorem3_relative_error_bound(10, 5, 100, 5)
        assert tight < loose

    def test_theorem3_bound_zero_at_k_equals_n(self):
        assert theory.theorem3_relative_error_bound(10, 10, 100, 5) == 0.0

    def test_theorem3_asymptotic_matches_order(self):
        exact_bound = theory.theorem3_relative_error_bound(10, 2, 500, 5)
        asymptotic = theory.theorem3_asymptotic_bound(10, 2, 500)
        assert exact_bound == pytest.approx(asymptotic, rel=0.5)

    def test_theorem3_invalid_arguments(self):
        with pytest.raises(ValueError):
            theory.theorem3_relative_error_bound(10, 0, 100, 5)
        with pytest.raises(ValueError):
            theory.theorem3_relative_error_bound(10, 11, 100, 5)
        with pytest.raises(ValueError):
            theory.theorem3_relative_error_bound(10, 1, 3, 5)

    def test_predicted_relative_error_for_budget(self):
        error = theory.predicted_relative_error(10, 32, samples_per_client=100, n_features=5)
        assert 0.0 < error < 1.0

    def test_predicted_relative_error_infinite_without_budget(self):
        assert theory.predicted_relative_error(10, 0, 100, 5) == float("inf")

    def test_linear_utility_table_monotone_in_size(self):
        table = theory.linear_utility_table(5, 50, 5, 1.0, 10.0)
        empty = table[frozenset()]
        grand = table[frozenset(range(5))]
        assert grand > empty

    def test_truncation_error_matches_empirical_mc_on_table(self):
        """The k*-truncated estimate on the theory table obeys the Thm. 3 bound."""
        n, t, x = 6, 50, 5
        table = theory.linear_utility_table(n, t, x, noise_mean=1.0, initial_mse=10.0)
        oracle = TabularUtility(n, table)
        exact = MCShapley().run(oracle, n).values
        from repro.core import KGreedy

        k_star = 2
        estimate = KGreedy(max_size=k_star).run(oracle, n).values
        empirical_ratio = abs(estimate.mean() - exact.mean()) / abs(exact.mean())
        bound = theory.theorem3_relative_error_bound(n, k_star, t, x)
        assert empirical_ratio <= bound + 0.05


class TestVariance:
    def test_theoretical_mc_below_cc(self):
        sizes = [50] * 6
        rounds = [2] * 6
        for client in range(6):
            mc = theoretical_variance_mc(sizes, client, rounds)
            cc = theoretical_variance_cc(sizes, client, rounds)
            assert mc < cc

    def test_theoretical_variance_scales_with_dataset_size(self):
        rounds = [2] * 4
        small = theoretical_variance_mc([10, 10, 10, 10], 0, rounds)
        large = theoretical_variance_mc([100, 10, 10, 10], 0, rounds)
        assert large > small

    def test_empirical_variance_comparison_runs(self, monotone_game_5):
        comparison = empirical_scheme_variance(
            monotone_game_5, n_clients=5, total_rounds=10, repetitions=6, seed=0
        )
        assert comparison.mc_variance.shape == (5,)
        assert comparison.cc_variance.shape == (5,)
        assert comparison.repetitions == 6

    def test_empirical_variance_requires_repetitions(self, monotone_game_5):
        with pytest.raises(ValueError):
            empirical_scheme_variance(monotone_game_5, 5, 10, repetitions=1)

    def test_contribution_variance_mc_lower_on_concave_game(self):
        """Thm. 2's conclusion on an accuracy-like concave game."""
        game = monotone_game(6, seed=3)
        comparison = contribution_variance(game, 6, n_samples=300, seed=0)
        assert comparison["mc_variance"] <= comparison["cc_variance"]
        assert comparison["mc_is_lower"]

    def test_contribution_variance_validates_sample_count(self, monotone_game_5):
        with pytest.raises(ValueError):
            contribution_variance(monotone_game_5, 5, n_samples=1)
