"""Lazy coalition plans: correctness, resumability and O(batch) memory."""

import tracemalloc

import numpy as np
import pytest

from repro.core import (
    IPSS,
    CCShapley,
    KGreedy,
    MCShapley,
    PermShapley,
    StratifiedSampling,
    StratumPlan,
    check_enumeration_limit,
    iter_combinations_from,
)
from repro.fl.utility import TabularUtility
from repro.utils.combinatorics import (
    coalitions_of_size,
    n_choose_k,
    sample_coalitions_of_size,
)


class TestIterCombinationsFrom:
    def test_matches_itertools_from_every_start(self):
        for n in range(0, 8):
            for k in range(0, n + 1):
                full = list(coalitions_of_size(n, k))
                for start in range(len(full) + 1):
                    assert list(iter_combinations_from(n, k, start)) == full[start:]

    def test_invalid_start_raises(self):
        with pytest.raises(ValueError):
            list(iter_combinations_from(5, 2, 11))
        with pytest.raises(ValueError):
            list(iter_combinations_from(5, 2, -1))

    def test_size_zero_stratum(self):
        assert list(iter_combinations_from(4, 0, 0)) == [frozenset()]
        assert list(iter_combinations_from(4, 0, 1)) == []


class TestStratumPlan:
    def test_batches_cover_stratum_in_lexicographic_order(self):
        plan = StratumPlan(7, 3, batch_size=4)
        walked = [coalition for batch in plan.batches() for coalition in batch]
        assert walked == list(coalitions_of_size(7, 3))
        assert plan.exhausted
        assert plan.remaining == 0

    def test_every_batch_bounded(self):
        plan = StratumPlan(8, 4, batch_size=16)
        sizes = [len(batch) for batch in plan.batches()]
        assert all(size <= 16 for size in sizes)
        assert sum(sizes) == n_choose_k(8, 4)

    def test_cursor_resume_mid_stratum(self):
        reference = list(coalitions_of_size(9, 4))
        first = StratumPlan(9, 4, batch_size=10)
        head = first.next_batch()
        # A brand-new plan seeded with the persisted cursor continues exactly
        # where the interrupted one stopped.
        resumed = StratumPlan(9, 4, batch_size=10, cursor=first.cursor)
        tail = [coalition for batch in resumed.batches() for coalition in batch]
        assert head + tail == reference

    def test_iteration_protocol(self):
        assert list(StratumPlan(5, 2, batch_size=3)) == list(coalitions_of_size(5, 2))
        assert len(StratumPlan(5, 2)) == 10

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            StratumPlan(4, 5)
        with pytest.raises(ValueError):
            StratumPlan(4, 2, batch_size=0)
        with pytest.raises(ValueError):
            StratumPlan(4, 2, cursor=7)  # C(4,2)=6


class TestMemoryRegression:
    """Planning at n=500 must allocate O(batch), never anything 2^n-shaped."""

    @staticmethod
    def _peak_allocated(fn) -> int:
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_stratum_plan_peak_is_batch_sized(self):
        # The size-250 stratum of a 500-client federation holds ~10^149
        # coalitions; walking three 256-coalition batches must stay in the
        # couple-of-MB range (each batch is 256 frozensets of 250 ints).
        def walk():
            plan = StratumPlan(500, 250, batch_size=256)
            for _ in range(3):
                plan.next_batch()

        assert self._peak_allocated(walk) < 32 * 1024 * 1024

    def test_stratum_sampling_peak_is_count_sized(self):
        def sample():
            rng = np.random.default_rng(0)
            sample_coalitions_of_size(500, 250, rng, 64)

        assert self._peak_allocated(sample) < 32 * 1024 * 1024

    def test_stratified_planning_at_500_clients(self):
        def plan():
            algorithm = StratifiedSampling(total_rounds=512, seed=0)
            rng = np.random.default_rng(0)
            sampled = algorithm._sample_strata(500, rng)
            assert sum(len(v) for v in sampled.values()) <= 512

        assert self._peak_allocated(plan) < 64 * 1024 * 1024

    def test_ipss_planning_at_500_clients(self):
        def plan():
            algorithm = IPSS(total_rounds=3108, seed=0)
            info = algorithm.sampling_plan(500)
            assert info["k_star"] == 1
            assert info["partial_budget"] > 0

        assert self._peak_allocated(plan) < 32 * 1024 * 1024


class TestEnumerationGuards:
    def test_shared_guard_message_is_actionable(self):
        with pytest.raises(ValueError) as excinfo:
            check_enumeration_limit(500, 20, "MC-SV")
        message = str(excinfo.value)
        assert "500 clients" in message
        assert "limit 20" in message
        assert "max_exact_clients" in message
        assert "IPSS" in message

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MCShapley(),
            lambda: CCShapley(),
            lambda: PermShapley(),
        ],
    )
    def test_exact_schemes_fail_fast_at_large_n(self, factory):
        algorithm = factory()
        with pytest.raises(ValueError, match="intractable"):
            algorithm.run(lambda s: float(len(s)), 500)

    def test_exact_scheme_limit_is_overridable(self):
        # Raising the limit genuinely unlocks larger n (here n=21 > 20 is
        # still too slow to *run*, so only the guard behaviour is probed).
        algorithm = MCShapley(max_exact_clients=25)
        payload = algorithm._incremental_init(21, np.random.default_rng(0))
        assert payload["next_size"] == 0
        with pytest.raises(ValueError, match="intractable"):
            MCShapley(max_exact_clients=10)._incremental_init(
                11, np.random.default_rng(0)
            )

    def test_k_greedy_fails_fast_on_planned_blowup(self):
        with pytest.raises(ValueError, match="K-Greedy"):
            KGreedy(max_size=4, seed=0).run(lambda s: float(len(s)), 500)
        # Small federations are untouched by the guard.
        result = KGreedy(max_size=2, seed=0).run(lambda s: float(len(s)), 6)
        assert result.values.shape == (6,)

    def test_tabular_from_function_guard(self):
        with pytest.raises(ValueError, match="intractable"):
            TabularUtility.from_function(500, lambda s: float(len(s)))
        small = TabularUtility.from_function(4, lambda s: float(len(s)))
        assert small.n_clients == 4

    def test_ipss_never_needs_the_guard_at_500_clients(self):
        # The budgeted estimator must keep working where exact paths refuse.
        algorithm = IPSS(total_rounds=600, seed=0)
        plan = algorithm.sampling_plan(500)
        assert plan["exhaustive_evaluations"] <= 600
