"""empirical_scheme_variance with a shared store / worker pool (Fig. 10 sweeps)."""

import numpy as np

from helpers import monotone_game
from repro.core import empirical_scheme_variance
from repro.store import MemoryUtilityStore

N = 5
ROUNDS = 10
REPS = 4


class TestVarianceStoreThreading:
    def test_estimates_unchanged_by_store_and_workers(self):
        plain = empirical_scheme_variance(
            monotone_game(N, seed=1), N, total_rounds=ROUNDS, repetitions=REPS, seed=0
        )
        with MemoryUtilityStore() as store:
            shared = empirical_scheme_variance(
                monotone_game(N, seed=1),
                N,
                total_rounds=ROUNDS,
                repetitions=REPS,
                seed=0,
                store=store,
                store_namespace="variance-test",
                n_workers=2,
            )
        assert shared.mc_mean.tolist() == plain.mc_mean.tolist()
        assert shared.cc_mean.tolist() == plain.cc_mean.tolist()
        assert shared.mc_variance.tolist() == plain.mc_variance.tolist()
        assert shared.cc_variance.tolist() == plain.cc_variance.tolist()

    def test_shared_oracle_deduplicates_across_repetitions(self):
        # Without sharing, every repetition re-evaluates its coalitions.
        raw = monotone_game(N, seed=1)
        empirical_scheme_variance(raw, N, total_rounds=ROUNDS, repetitions=REPS, seed=0)
        raw_evaluations = raw.evaluations

        shared_game = monotone_game(N, seed=1)
        with MemoryUtilityStore() as store:
            comparison = empirical_scheme_variance(
                shared_game,
                N,
                total_rounds=ROUNDS,
                repetitions=REPS,
                seed=0,
                store=store,
                store_namespace="variance-test",
            )
        assert comparison.evaluations == shared_game.evaluations
        assert comparison.evaluations < raw_evaluations
        # n=5 has only 2^5 coalitions; the sweep must not train more.
        assert comparison.evaluations <= 2**N

    def test_warm_store_serves_second_sweep(self):
        with MemoryUtilityStore() as store:
            first = empirical_scheme_variance(
                monotone_game(N, seed=1),
                N,
                total_rounds=ROUNDS,
                repetitions=REPS,
                seed=0,
                store=store,
                store_namespace="variance-test",
            )
            assert first.evaluations > 0
            second_game = monotone_game(N, seed=1)
            second = empirical_scheme_variance(
                second_game,
                N,
                total_rounds=ROUNDS,
                repetitions=REPS,
                seed=0,
                store=store,
                store_namespace="variance-test",
            )
        assert second.evaluations == 0
        assert second_game.evaluations == 0
        assert second.store_hits > 0
        assert second.mc_mean.tolist() == first.mc_mean.tolist()

    def test_store_requires_a_namespace(self):
        # Store keys are bare coalition sets; without a task-addressing
        # namespace two different utilities would share cached values.
        import pytest

        with MemoryUtilityStore() as store:
            with pytest.raises(ValueError, match="store_namespace"):
                empirical_scheme_variance(
                    monotone_game(N, seed=1),
                    N,
                    total_rounds=ROUNDS,
                    repetitions=REPS,
                    seed=0,
                    store=store,
                )

    def test_cost_counters_without_sharing(self):
        game = monotone_game(N, seed=1)
        comparison = empirical_scheme_variance(
            game, N, total_rounds=ROUNDS, repetitions=REPS, seed=0
        )
        # No store tier -> no store hits; evaluations mirror the raw oracle.
        assert comparison.store_hits == 0
        assert comparison.evaluations == game.evaluations > 0
