"""Tests for the exact Shapley computation schemes (MC-SV, CC-SV, Perm-SV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CCShapley, MCShapley, PermShapley, exact_shapley
from repro.fl import TabularUtility
from repro.utils.combinatorics import all_coalitions

from tests.helpers import monotone_game


class TestPaperExample:
    """The worked three-client example of the paper (Table I / Example 1)."""

    def test_mc_shapley_matches_paper(self, table1_utility, table1_exact_values):
        result = MCShapley().run(table1_utility, 3)
        assert np.allclose(result.values, table1_exact_values, atol=0.005)

    def test_cc_shapley_matches_paper(self, table1_utility, table1_exact_values):
        result = CCShapley().run(table1_utility, 3)
        assert np.allclose(result.values, table1_exact_values, atol=0.005)

    def test_perm_shapley_matches_paper(self, table1_utility, table1_exact_values):
        result = PermShapley().run(table1_utility, 3)
        assert np.allclose(result.values, table1_exact_values, atol=0.005)

    def test_all_three_schemes_agree(self, table1_utility):
        mc = MCShapley().run(table1_utility, 3).values
        cc = CCShapley().run(table1_utility, 3).values
        perm = PermShapley().run(table1_utility, 3).values
        assert np.allclose(mc, cc, atol=1e-10)
        assert np.allclose(mc, perm, atol=1e-10)

    def test_exact_shapley_convenience(self, table1_utility, table1_exact_values):
        assert np.allclose(exact_shapley(table1_utility, 3), table1_exact_values, atol=0.005)


class TestShapleyAxioms:
    def test_efficiency(self, monotone_game_5):
        values = MCShapley().run(monotone_game_5, 5).values
        grand = monotone_game_5(frozenset(range(5)))
        empty = monotone_game_5(frozenset())
        assert values.sum() == pytest.approx(grand - empty, abs=1e-9)

    def test_null_player_gets_zero(self):
        # Client 2 never changes the utility.
        def function(coalition):
            return float(len(coalition - {2}))

        oracle = TabularUtility.from_function(4, function)
        values = MCShapley().run(oracle, 4).values
        assert values[2] == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_players_get_equal_value(self):
        # Clients 0 and 1 are interchangeable.
        def function(coalition):
            count = len(coalition & {0, 1})
            return count * 0.3 + (1.0 if 2 in coalition else 0.0)

        oracle = TabularUtility.from_function(3, function)
        values = MCShapley().run(oracle, 3).values
        assert values[0] == pytest.approx(values[1], abs=1e-12)

    def test_additive_game_recovers_weights(self):
        weights = np.array([0.1, 0.4, 0.2, 0.3])

        def function(coalition):
            return float(sum(weights[i] for i in coalition))

        oracle = TabularUtility.from_function(4, function)
        values = MCShapley().run(oracle, 4).values
        assert np.allclose(values, weights, atol=1e-12)

    def test_linearity_of_games(self):
        game_a = monotone_game(4, seed=10)
        game_b = monotone_game(4, seed=11)
        values_a = MCShapley().run(game_a, 4).values
        values_b = MCShapley().run(game_b, 4).values

        def summed(coalition):
            return game_a(coalition) + game_b(coalition)

        combined = TabularUtility.from_function(4, summed)
        values_sum = MCShapley().run(combined, 4).values
        assert np.allclose(values_sum, values_a + values_b, atol=1e-9)


class TestSchemeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mc_and_cc_agree_on_random_games(self, seed):
        game = monotone_game(5, seed=seed)
        mc = MCShapley().run(game, 5).values
        cc = CCShapley().run(game, 5).values
        assert np.allclose(mc, cc, atol=1e-10)

    def test_perm_agrees_on_small_game(self):
        game = monotone_game(4, seed=7)
        mc = MCShapley().run(game, 4).values
        perm = PermShapley().run(game, 4).values
        assert np.allclose(mc, perm, atol=1e-10)


class TestCostAccounting:
    def test_mc_shapley_evaluates_all_coalitions(self, monotone_game_5):
        result = MCShapley().run(monotone_game_5, 5)
        assert result.utility_evaluations == 2**5

    def test_perm_shapley_batches_distinct_coalitions(self, table1_utility):
        result = PermShapley().run(table1_utility, 3)
        # Every permutation prefix is a subset of N, so the batched plan
        # evaluates each of the 2^3 coalitions exactly once instead of the
        # 3! × 4 = 24 per-prefix oracle calls of the sequential formulation.
        assert result.utility_evaluations == 2**3

    def test_result_metadata_fields(self, table1_utility):
        result = MCShapley().run(table1_utility, 3)
        assert result.algorithm == "MC-Shapley"
        assert result.n_clients == 3
        assert result.elapsed_seconds >= 0.0


class TestTractabilityLimits:
    def test_perm_shapley_rejects_large_n(self):
        oracle = TabularUtility(12, {})
        with pytest.raises(ValueError):
            PermShapley().run(oracle, 12)

    def test_mc_shapley_rejects_very_large_n(self):
        oracle = TabularUtility(25, {})
        with pytest.raises(ValueError):
            MCShapley().run(oracle, 25)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    n=st.integers(min_value=2, max_value=6),
)
def test_efficiency_property(seed, n):
    """Σ φ_i = U(N) − U(∅) for arbitrary monotone games (efficiency axiom)."""
    game = monotone_game(n, seed=seed)
    values = MCShapley().run(game, n).values
    total = game(frozenset(range(n))) - game(frozenset())
    assert values.sum() == pytest.approx(total, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500), n=st.integers(min_value=2, max_value=5))
def test_monotone_game_values_nonnegative(seed, n):
    """In a monotone game every marginal contribution — hence value — is ≥ 0."""
    game = monotone_game(n, seed=seed)
    values = MCShapley().run(game, n).values
    assert np.all(values >= -1e-12)
