"""Tests for the extra baselines: Leave-One-Out, Banzhaf sampling, Random."""

import numpy as np
import pytest

from repro.core import (
    BanzhafSampling,
    LeaveOneOut,
    MCShapley,
    RandomValuation,
    rank_correlation,
    relative_error_l2,
)
from repro.fl import TabularUtility

from tests.helpers import monotone_game


class TestLeaveOneOut:
    def test_evaluation_count(self, monotone_game_5):
        result = LeaveOneOut().run(monotone_game_5, 5)
        assert result.utility_evaluations == 6  # U(N) plus n leave-outs

    def test_null_player_gets_zero(self):
        def function(coalition):
            return float(len(coalition - {1}))

        oracle = TabularUtility.from_function(4, function)
        values = LeaveOneOut().run(oracle, 4).values
        assert values[1] == pytest.approx(0.0)

    def test_additive_game_recovers_weights(self):
        weights = np.array([0.1, 0.4, 0.2])

        def function(coalition):
            return float(sum(weights[i] for i in coalition))

        oracle = TabularUtility.from_function(3, function)
        values = LeaveOneOut().run(oracle, 3).values
        assert np.allclose(values, weights)

    def test_ranking_agrees_with_shapley_on_monotone_game(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        loo = LeaveOneOut().run(monotone_game_5, 5).values
        assert rank_correlation(loo, exact) > 0.6


class TestBanzhafSampling:
    def test_budget_respected(self, monotone_game_8):
        result = BanzhafSampling(total_rounds=20, seed=0).run(monotone_game_8, 8)
        assert result.utility_evaluations <= 20

    def test_reasonable_on_additive_game(self):
        weights = np.array([0.1, 0.4, 0.2, 0.3])

        def function(coalition):
            return float(sum(weights[i] for i in coalition))

        oracle = TabularUtility.from_function(4, function)
        values = BanzhafSampling(total_rounds=600, seed=0).run(oracle, 4).values
        # On additive games the Banzhaf and Shapley values coincide with the weights.
        assert relative_error_l2(values, weights) < 0.15

    def test_deterministic_given_seed(self, monotone_game_5):
        a = BanzhafSampling(total_rounds=30, seed=4).run(monotone_game_5, 5).values
        b = BanzhafSampling(total_rounds=30, seed=4).run(monotone_game_5, 5).values
        assert np.allclose(a, b)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BanzhafSampling(total_rounds=1)

    def test_values_finite_under_tiny_budget(self, monotone_game_8):
        values = BanzhafSampling(total_rounds=2, seed=0).run(monotone_game_8, 8).values
        assert np.all(np.isfinite(values))


class TestRandomValuation:
    def test_shape_and_range(self, monotone_game_5):
        values = RandomValuation(seed=0).run(monotone_game_5, 5).values
        assert values.shape == (5,)
        assert np.all((values >= 0) & (values <= 1))

    def test_no_utility_evaluations(self, monotone_game_5):
        result = RandomValuation(seed=0).run(monotone_game_5, 5)
        assert result.utility_evaluations == 0

    def test_real_methods_beat_random_on_error(self):
        game = monotone_game(6, seed=8, concavity=0.3)
        exact = MCShapley().run(game, 6).values
        random_error = relative_error_l2(RandomValuation(seed=1).run(game, 6).values, exact)
        loo_error = relative_error_l2(LeaveOneOut().run(game, 6).values, exact)
        from repro.core import IPSS

        ipss_error = relative_error_l2(IPSS(total_rounds=20, seed=1).run(game, 6).values, exact)
        assert ipss_error < random_error
        assert loo_error < random_error
