"""Tests for the unified stratified sampling framework (Alg. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MCShapley, StratifiedSampling, allocate_rounds, relative_error_l2
from repro.utils.combinatorics import n_choose_k

from tests.helpers import monotone_game


class TestAllocateRounds:
    def test_total_budget_respected(self):
        for n in (3, 5, 8):
            for gamma in (n, 2 * n, 30):
                rounds = allocate_rounds(n, gamma)
                assert sum(rounds) <= gamma

    def test_each_stratum_capped_by_its_size(self):
        rounds = allocate_rounds(5, 200)
        for stratum, m in enumerate(rounds, start=1):
            assert m <= n_choose_k(5, stratum)

    def test_every_stratum_gets_a_round_when_budget_allows(self):
        rounds = allocate_rounds(6, 10)
        assert all(m >= 1 for m in rounds)

    def test_uniform_strategy(self):
        rounds = allocate_rounds(4, 8, strategy="uniform")
        assert sum(rounds) <= 8
        assert max(rounds) - min(rounds) <= 1 or rounds[-1] == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            allocate_rounds(4, 0)
        with pytest.raises(ValueError):
            allocate_rounds(4, 8, strategy="magic")

    @pytest.mark.parametrize("strategy", ["uniform", "proportional"])
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    @pytest.mark.parametrize("gamma", [1, 3, 7, 15, 31, 100, 1000])
    def test_budget_fully_spent_up_to_capacity(self, strategy, n, gamma):
        """The whole budget is allocated whenever the 2^n − 1 coalitions can
        absorb it; beyond capacity every stratum saturates (no silent drop)."""
        rounds = allocate_rounds(n, gamma, strategy=strategy)
        assert sum(rounds) == min(gamma, 2**n - 1)

    def test_uniform_saturates_all_strata_on_oversized_budget(self):
        rounds = allocate_rounds(3, 10**6, strategy="uniform")
        assert rounds == [n_choose_k(3, k) for k in range(1, 4)]


class TestStratifiedSampling:
    def test_full_budget_recovers_exact_mc(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        algorithm = StratifiedSampling(total_rounds=2**5, scheme="mc", seed=0)
        estimate = algorithm.run(monotone_game_5, 5).values
        assert relative_error_l2(estimate, exact) < 1e-9

    def test_full_budget_recovers_exact_cc(self, monotone_game_5):
        exact = MCShapley().run(monotone_game_5, 5).values
        algorithm = StratifiedSampling(total_rounds=2**5, scheme="cc", seed=0)
        estimate = algorithm.run(monotone_game_5, 5).values
        assert relative_error_l2(estimate, exact) < 1e-9

    def test_partial_budget_gives_reasonable_estimate(self, monotone_game_8):
        exact = MCShapley().run(monotone_game_8, 8).values
        algorithm = StratifiedSampling(
            total_rounds=60, scheme="mc", pair_on_demand=True, seed=1
        )
        estimate = algorithm.run(monotone_game_8, 8).values
        assert relative_error_l2(estimate, exact) < 0.5

    def test_explicit_rounds_per_stratum(self, monotone_game_5):
        algorithm = StratifiedSampling(rounds_per_stratum=[2, 2, 2, 2, 1], seed=0)
        result = algorithm.run(monotone_game_5, 5)
        assert result.values.shape == (5,)

    def test_wrong_rounds_per_stratum_length_raises(self, monotone_game_5):
        algorithm = StratifiedSampling(rounds_per_stratum=[1, 1], seed=0)
        with pytest.raises(ValueError):
            algorithm.run(monotone_game_5, 5)

    def test_invalid_scheme_raises(self):
        with pytest.raises(ValueError):
            StratifiedSampling(scheme="xx")

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            StratifiedSampling(total_rounds=0)

    def test_result_name_includes_scheme(self, monotone_game_5):
        result = StratifiedSampling(total_rounds=8, scheme="cc", seed=0).run(monotone_game_5, 5)
        assert result.algorithm == "Stratified-CC"
        assert result.metadata["scheme"] == "cc"

    def test_dense_strata_are_filled_exactly(self):
        """Requesting m_k = C(n, k) samples must fill the stratum completely
        (the old rejection sampler could under-fill dense strata)."""
        n = 6
        full = [n_choose_k(n, k) for k in range(1, n + 1)]
        algorithm = StratifiedSampling(rounds_per_stratum=full, seed=0)
        sampled = algorithm._sample_strata(n, np.random.default_rng(0))
        for stratum, coalitions in sampled.items():
            assert len(coalitions) == n_choose_k(n, stratum)
            assert len(set(coalitions)) == len(coalitions)

    def test_near_full_strata_are_filled_without_replacement(self):
        """m_k just below C(n, k) — the regime where rejection sampling's
        attempt cap used to bite — now always yields m_k distinct sets."""
        n = 7
        targets = [max(1, n_choose_k(n, k) - 1) for k in range(1, n + 1)]
        algorithm = StratifiedSampling(rounds_per_stratum=targets, seed=0)
        sampled = algorithm._sample_strata(n, np.random.default_rng(3))
        for stratum, coalitions in sampled.items():
            assert len(coalitions) == targets[stratum - 1]
            assert len(set(coalitions)) == len(coalitions)
            assert all(len(c) == stratum for c in coalitions)

    def test_deterministic_given_seed(self, monotone_game_5):
        a = StratifiedSampling(total_rounds=10, seed=3).run(monotone_game_5, 5).values
        b = StratifiedSampling(total_rounds=10, seed=3).run(monotone_game_5, 5).values
        assert np.allclose(a, b)

    def test_budget_not_exceeded(self, monotone_game_8):
        result = StratifiedSampling(total_rounds=20, seed=0).run(monotone_game_8, 8)
        # +1 allows the always-available empty coalition evaluation.
        assert result.utility_evaluations <= 21

    def test_theorem1_stratum_contribution_unbiased_mc(self):
        """Thm. 1 (Eq. 6): the expected per-stratum MC contribution of a
        uniformly sampled coalition equals the exact stratum average."""
        from repro.utils.combinatorics import coalitions_of_size, random_coalition_of_size

        game = monotone_game(5, seed=42)
        rng = np.random.default_rng(0)
        client = 2
        for stratum in range(1, 6):
            exact_terms = [
                game(c) - game(c - {client})
                for c in coalitions_of_size(5, stratum)
                if client in c
            ]
            exact_mean = float(np.mean(exact_terms))
            samples = []
            for _ in range(400):
                coalition = random_coalition_of_size(5, stratum - 1, rng, exclude=[client]) | {
                    client
                }
                samples.append(game(coalition) - game(coalition - {client}))
            assert np.mean(samples) == pytest.approx(exact_mean, abs=0.03)

    def test_theorem1_stratum_contribution_unbiased_cc(self):
        """Thm. 1 for the CC scheme: unbiased per-stratum complementary terms."""
        from repro.utils.combinatorics import coalitions_of_size, random_coalition_of_size

        game = monotone_game(4, seed=43)
        rng = np.random.default_rng(1)
        everyone = frozenset(range(4))
        client = 1
        for stratum in range(1, 5):
            exact_terms = [
                game(c) - game(everyone - c)
                for c in coalitions_of_size(4, stratum)
                if client in c
            ]
            exact_mean = float(np.mean(exact_terms))
            samples = []
            for _ in range(400):
                coalition = random_coalition_of_size(4, stratum - 1, rng, exclude=[client]) | {
                    client
                }
                samples.append(game(coalition) - game(everyone - coalition))
            assert np.mean(samples) == pytest.approx(exact_mean, abs=0.03)

    def test_pair_on_demand_reduces_shrinkage_bias(self):
        """Averaged estimates with on-demand pairing land closer to the exact
        total value than the literal variant under the same tight budget."""
        game = monotone_game(5, seed=42)
        exact_total = MCShapley().run(game, 5).values.sum()

        def mean_total(pair_on_demand):
            estimates = [
                StratifiedSampling(
                    total_rounds=12,
                    scheme="mc",
                    pair_on_demand=pair_on_demand,
                    seed=seed,
                )
                .run(game, 5)
                .values.sum()
                for seed in range(40)
            ]
            return float(np.mean(estimates))

        literal_gap = abs(mean_total(False) - exact_total)
        paired_gap = abs(mean_total(True) - exact_total)
        assert paired_gap <= literal_gap + 1e-9

    def test_literal_variant_is_biased_towards_zero_under_tight_budgets(self):
        """Documents why pair_on_demand exists: the literal Alg. 1 drops
        unmatched samples, shrinking the estimate under tight budgets."""
        game = monotone_game(5, seed=42)
        exact = MCShapley().run(game, 5).values
        literal = np.mean(
            [
                StratifiedSampling(total_rounds=12, scheme="mc", seed=seed).run(game, 5).values
                for seed in range(40)
            ],
            axis=0,
        )
        assert literal.sum() <= exact.sum() + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    gamma=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=200),
    scheme=st.sampled_from(["mc", "cc"]),
)
def test_stratified_sampling_always_returns_finite_values(n, gamma, seed, scheme):
    """The framework never produces NaNs or infinities, whatever the budget."""
    game = monotone_game(n, seed=seed)
    result = StratifiedSampling(total_rounds=gamma, scheme=scheme, seed=seed).run(game, n)
    assert np.all(np.isfinite(result.values))
    assert result.values.shape == (n,)
