"""Tests for the parametric models: linear, logistic, MLP, CNN.

Includes finite-difference gradient checks for the neural networks — the FL
simulator and every gradient-based baseline depend on those gradients being
correct.
"""

import numpy as np
import pytest

from repro.datasets import Dataset, make_classification_blobs, make_linear_regression, make_mnist_like
from repro.models import (
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    SimpleCNN,
)
from repro.models.metrics import cross_entropy


def numeric_gradient(model, parameters, features, targets, eps=1e-5):
    """Central finite differences of the model's training loss."""

    def loss(params):
        if isinstance(model, LinearRegressionModel):
            predictions = model._predict_with(params, features.reshape(len(features), -1))
            return float(np.mean((predictions - targets) ** 2))
        if isinstance(model, LogisticRegressionModel):
            probabilities = model._probabilities(params, features.reshape(len(features), -1))
            return cross_entropy(probabilities, targets)
        if isinstance(model, MLPClassifier):
            probabilities, _, _ = model._forward(params, features.reshape(len(features), -1))
            return cross_entropy(probabilities, targets)
        if isinstance(model, SimpleCNN):
            probabilities, _ = model._forward(params, model._reshape_images(features))
            return cross_entropy(probabilities, targets)
        raise TypeError(type(model))

    grad = np.zeros_like(parameters)
    for index in range(len(parameters)):
        plus = parameters.copy()
        minus = parameters.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (loss(plus) - loss(minus)) / (2 * eps)
    return grad


class TestLinearRegressionModel:
    def test_parameter_count(self):
        assert LinearRegressionModel(n_features=4).num_parameters() == 5
        assert LinearRegressionModel(n_features=4, fit_intercept=False).num_parameters() == 4

    def test_sgd_recovers_coefficients(self):
        coefficients = np.array([2.0, -1.0, 0.5])
        dataset = make_linear_regression(
            400, n_features=3, coefficients=coefficients, noise_std=0.01, seed=0
        )
        model = LinearRegressionModel(n_features=3, epochs=60, learning_rate=0.05)
        model.fit(dataset, seed=0)
        weights = model.get_parameters()[:3]
        assert np.allclose(weights, coefficients, atol=0.1)

    def test_closed_form_matches_lstsq(self):
        dataset = make_linear_regression(100, n_features=4, noise_std=0.2, seed=1)
        model = LinearRegressionModel(n_features=4)
        model.fit_closed_form(dataset)
        design = np.column_stack([dataset.features, np.ones(len(dataset))])
        expected, *_ = np.linalg.lstsq(design, dataset.targets, rcond=None)
        assert np.allclose(model.get_parameters(), expected, atol=1e-4)

    def test_evaluate_is_negative_mse(self):
        dataset = make_linear_regression(50, n_features=3, seed=2)
        model = LinearRegressionModel(n_features=3)
        model.fit_closed_form(dataset)
        assert model.evaluate(dataset) <= 0.0

    def test_evaluate_empty_dataset(self):
        dataset = make_linear_regression(10, n_features=3, seed=3)
        model = LinearRegressionModel(n_features=3)
        assert model.evaluate(Dataset.empty_like(dataset)) == float("-inf")

    def test_gradient_matches_numeric(self):
        dataset = make_linear_regression(20, n_features=3, seed=4)
        model = LinearRegressionModel(n_features=3)
        model.initialize(0)
        params = model.get_parameters() + 0.1
        analytic = model._gradient(params, dataset.features, dataset.targets)
        numeric = numeric_gradient(model, params, dataset.features, dataset.targets)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_set_parameters_shape_check(self):
        model = LinearRegressionModel(n_features=3)
        with pytest.raises(ValueError):
            model.set_parameters(np.zeros(7))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LinearRegressionModel(n_features=0)
        with pytest.raises(ValueError):
            LinearRegressionModel(n_features=3, learning_rate=0.0)
        with pytest.raises(ValueError):
            LinearRegressionModel(n_features=3, batch_size=0)


class TestLogisticRegressionModel:
    def test_parameter_count(self):
        model = LogisticRegressionModel(n_features=4, n_classes=3)
        assert model.num_parameters() == 4 * 3 + 3

    def test_learns_separable_task(self):
        dataset = make_classification_blobs(
            300, n_features=5, n_classes=3, class_separation=4.0, cluster_std=0.5, seed=0
        )
        model = LogisticRegressionModel(n_features=5, n_classes=3, epochs=25)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.9

    def test_predict_proba_rows_sum_to_one(self):
        dataset = make_classification_blobs(30, n_features=4, n_classes=3, seed=1)
        model = LogisticRegressionModel(n_features=4, n_classes=3)
        model.fit(dataset, seed=0)
        probabilities = model.predict_proba(dataset.features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_gradient_matches_numeric(self):
        dataset = make_classification_blobs(15, n_features=3, n_classes=3, seed=2)
        model = LogisticRegressionModel(n_features=3, n_classes=3, init_scale=0.3)
        model.initialize(1)
        params = model.get_parameters()
        analytic = model._gradient(params, dataset.features, dataset.targets)
        numeric = numeric_gradient(model, params, dataset.features, dataset.targets)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_evaluate_empty_dataset_zero(self):
        dataset = make_classification_blobs(10, n_features=4, n_classes=2, seed=3)
        model = LogisticRegressionModel(n_features=4, n_classes=2)
        assert model.evaluate(Dataset.empty_like(dataset)) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LogisticRegressionModel(n_features=3, n_classes=1)


class TestMLPClassifier:
    def test_parameter_count(self):
        model = MLPClassifier(n_features=6, n_classes=3, hidden_sizes=(4,))
        expected = 6 * 4 + 4 + 4 * 3 + 3
        assert model.num_parameters() == expected

    def test_two_hidden_layers_parameter_count(self):
        model = MLPClassifier(n_features=5, n_classes=2, hidden_sizes=(4, 3))
        expected = 5 * 4 + 4 + 4 * 3 + 3 + 3 * 2 + 2
        assert model.num_parameters() == expected

    def test_learns_separable_task(self):
        dataset = make_classification_blobs(
            300, n_features=6, n_classes=3, class_separation=4.0, cluster_std=0.7, seed=0
        )
        model = MLPClassifier(n_features=6, n_classes=3, hidden_sizes=(16,), epochs=25)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.9

    def test_gradient_matches_numeric(self):
        dataset = make_classification_blobs(10, n_features=4, n_classes=3, seed=1)
        model = MLPClassifier(n_features=4, n_classes=3, hidden_sizes=(5,), activation="tanh")
        model.initialize(2)
        params = model.get_parameters()
        analytic = model._gradient(params, dataset.features, dataset.targets)
        numeric = numeric_gradient(model, params, dataset.features, dataset.targets)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_relu_gradient_matches_numeric(self):
        dataset = make_classification_blobs(10, n_features=4, n_classes=2, seed=5)
        model = MLPClassifier(n_features=4, n_classes=2, hidden_sizes=(6,), activation="relu")
        model.initialize(3)
        params = model.get_parameters()
        analytic = model._gradient(params, dataset.features, dataset.targets)
        numeric = numeric_gradient(model, params, dataset.features, dataset.targets)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_pack_unpack_roundtrip(self):
        model = MLPClassifier(n_features=3, n_classes=2, hidden_sizes=(4,))
        model.initialize(0)
        params = model.get_parameters()
        layers = model._unpack(params)
        assert np.allclose(model._pack(layers), params)

    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValueError):
            MLPClassifier(n_features=3, n_classes=2, hidden_sizes=(0,))

    def test_clone_is_unfitted_copy(self):
        model = MLPClassifier(n_features=3, n_classes=2)
        model.initialize(0)
        clone = model.clone()
        assert clone.num_parameters() == model.num_parameters()


class TestSimpleCNN:
    def test_parameter_count_consistency(self):
        model = SimpleCNN(image_size=8, n_classes=4, n_filters=2, kernel_size=3)
        model.initialize(0)
        assert model.get_parameters().shape == (model.num_parameters(),)

    def test_learns_image_task(self):
        dataset = make_mnist_like(300, image_size=8, pixel_noise=0.15, seed=0)
        model = SimpleCNN(image_size=8, n_classes=10, n_filters=4, epochs=10, learning_rate=0.3)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.5

    def test_gradient_matches_numeric(self):
        dataset = make_mnist_like(6, image_size=6, seed=1)
        model = SimpleCNN(image_size=6, n_classes=10, n_filters=2, kernel_size=3)
        model.initialize(0)
        params = model.get_parameters()
        analytic = model._gradient(params, dataset.features, dataset.targets)
        numeric = numeric_gradient(model, params, dataset.features, dataset.targets)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_accepts_flattened_input(self):
        dataset = make_mnist_like(20, image_size=8, seed=2)
        model = SimpleCNN(image_size=8, n_classes=10, n_filters=2, epochs=2)
        flat = Dataset(dataset.flat_features, dataset.targets, num_classes=10)
        model.fit(flat, seed=0)
        predictions = model.predict(flat.features)
        assert predictions.shape == (20,)

    def test_image_too_small_raises(self):
        with pytest.raises(ValueError):
            SimpleCNN(image_size=3, n_classes=2, kernel_size=3)

    def test_predict_proba_rows_sum_to_one(self):
        dataset = make_mnist_like(10, image_size=8, seed=3)
        model = SimpleCNN(image_size=8, n_classes=10, n_filters=2, epochs=1)
        model.fit(dataset, seed=0)
        probabilities = model.predict_proba(dataset.features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)


class TestParametricModelProtocol:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LinearRegressionModel(n_features=4),
            lambda: LogisticRegressionModel(n_features=4, n_classes=3),
            lambda: MLPClassifier(n_features=4, n_classes=3, hidden_sizes=(5,)),
            lambda: SimpleCNN(image_size=6, n_classes=3, n_filters=2),
        ],
    )
    def test_get_set_parameters_roundtrip(self, factory):
        model = factory()
        model.initialize(0)
        params = model.get_parameters()
        model.set_parameters(params * 2.0)
        assert np.allclose(model.get_parameters(), params * 2.0)

    def test_initialization_is_deterministic_per_seed(self):
        a = MLPClassifier(n_features=4, n_classes=2, seed=3)
        b = MLPClassifier(n_features=4, n_classes=2, seed=3)
        assert np.allclose(a.initialize(3).get_parameters(), b.initialize(3).get_parameters())

    def test_train_epochs_on_empty_dataset_is_noop(self):
        dataset = make_classification_blobs(10, n_features=4, n_classes=2, seed=0)
        empty = Dataset.empty_like(dataset)
        model = LogisticRegressionModel(n_features=4, n_classes=2)
        model.initialize(0)
        before = model.get_parameters()
        after = model.train_epochs(empty, epochs=3, seed=0)
        assert np.allclose(before, after)

    def test_fedprox_proximal_term_pulls_towards_reference(self):
        dataset = make_classification_blobs(100, n_features=4, n_classes=2, seed=1)
        reference = np.zeros(LogisticRegressionModel(n_features=4, n_classes=2).num_parameters())

        free = LogisticRegressionModel(n_features=4, n_classes=2, epochs=10)
        free.initialize(0)
        free_params = free.train_epochs(dataset, seed=0)

        proximal = LogisticRegressionModel(n_features=4, n_classes=2, epochs=10)
        proximal.initialize(0)
        proximal_params = proximal.train_epochs(
            dataset, seed=0, proximal_mu=1.0, reference_parameters=reference
        )
        assert np.linalg.norm(proximal_params) < np.linalg.norm(free_params)
