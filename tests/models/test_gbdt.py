"""Tests for the gradient-boosted-trees XGBoost stand-in."""

import numpy as np
import pytest

from repro.datasets import Dataset, make_adult_like, make_classification_blobs
from repro.models import GradientBoostedTrees


class TestGradientBoostedTrees:
    def test_learns_binary_task(self):
        dataset = make_adult_like(400, seed=0)
        model = GradientBoostedTrees(n_classes=2, n_rounds=10, max_depth=3)
        model.fit(dataset, seed=0)
        majority = max(dataset.label_distribution())
        assert model.evaluate(dataset) > majority

    def test_learns_multiclass_task(self):
        dataset = make_classification_blobs(
            300, n_features=5, n_classes=3, class_separation=4.0, cluster_std=0.6, seed=1
        )
        model = GradientBoostedTrees(n_classes=3, n_rounds=8, max_depth=3)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.8

    def test_more_rounds_do_not_hurt_training_fit(self):
        dataset = make_adult_like(300, seed=2)
        small = GradientBoostedTrees(n_classes=2, n_rounds=2).fit(dataset, seed=0)
        large = GradientBoostedTrees(n_classes=2, n_rounds=15).fit(dataset, seed=0)
        assert large.evaluate(dataset) >= small.evaluate(dataset) - 1e-9

    def test_predict_proba_shape_and_simplex(self):
        dataset = make_adult_like(100, seed=3)
        model = GradientBoostedTrees(n_classes=2, n_rounds=4).fit(dataset, seed=0)
        probabilities = model.predict_proba(dataset.features)
        assert probabilities.shape == (100, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_unfitted_model_predicts_something(self):
        dataset = make_adult_like(20, seed=4)
        model = GradientBoostedTrees(n_classes=2)
        predictions = model.predict(dataset.features)
        assert predictions.shape == (20,)

    def test_fit_on_empty_dataset_is_safe(self):
        dataset = make_adult_like(20, seed=5)
        empty = Dataset.empty_like(dataset)
        model = GradientBoostedTrees(n_classes=2).fit(empty, seed=0)
        assert model.n_trees == 0
        assert model.evaluate(dataset) >= 0.0

    def test_evaluate_empty_test_set(self):
        dataset = make_adult_like(50, seed=6)
        model = GradientBoostedTrees(n_classes=2, n_rounds=2).fit(dataset, seed=0)
        assert model.evaluate(Dataset.empty_like(dataset)) == 0.0

    def test_n_trees_counts_rounds_and_outputs(self):
        binary = GradientBoostedTrees(n_classes=2, n_rounds=5).fit(
            make_adult_like(80, seed=7), seed=0
        )
        assert binary.n_trees == 5
        multi = GradientBoostedTrees(n_classes=3, n_rounds=4).fit(
            make_classification_blobs(80, n_classes=3, seed=7), seed=0
        )
        assert multi.n_trees == 12

    def test_subsample_option(self):
        dataset = make_adult_like(200, seed=8)
        model = GradientBoostedTrees(n_classes=2, n_rounds=5, subsample=0.5)
        model.fit(dataset, seed=0)
        assert model.evaluate(dataset) > 0.5

    def test_is_not_parametric(self):
        assert GradientBoostedTrees(n_classes=2).is_parametric is False

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_classes=1)
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_classes=2, subsample=0.0)

    def test_deterministic_given_seed(self):
        dataset = make_adult_like(150, seed=9)
        a = GradientBoostedTrees(n_classes=2, n_rounds=3, subsample=0.8).fit(dataset, seed=5)
        b = GradientBoostedTrees(n_classes=2, n_rounds=3, subsample=0.8).fit(dataset, seed=5)
        assert np.array_equal(a.predict(dataset.features), b.predict(dataset.features))
