"""Tests for model metrics and activation functions."""

import numpy as np
import pytest

from repro.models.activations import (
    get_activation,
    relu,
    relu_grad,
    sigmoid,
    softmax,
    tanh_grad,
)
from repro.models.metrics import (
    accuracy_score,
    cross_entropy,
    mean_absolute_error,
    mean_squared_error,
    negative_mse,
)


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0
        assert accuracy_score([1, 2, 3], [0, 0, 0]) == 0.0

    def test_accuracy_partial(self):
        assert accuracy_score([1, 1, 0, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_accuracy_empty_is_zero(self):
        assert accuracy_score([], []) == 0.0

    def test_accuracy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_mse_known_value(self):
        assert mean_squared_error([0.0, 2.0], [1.0, 0.0]) == pytest.approx(2.5)

    def test_mse_empty_is_inf(self):
        assert mean_squared_error([], []) == float("inf")

    def test_negative_mse_sign(self):
        assert negative_mse([1.0], [0.0]) == pytest.approx(-1.0)

    def test_mae_known_value(self):
        assert mean_absolute_error([0.0, 2.0], [1.0, 0.0]) == pytest.approx(1.5)

    def test_cross_entropy_confident_correct_is_small(self):
        probabilities = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert cross_entropy(probabilities, [0, 1]) < 0.05

    def test_cross_entropy_wrong_is_large(self):
        probabilities = np.array([[0.01, 0.99]])
        assert cross_entropy(probabilities, [0]) > 2.0

    def test_cross_entropy_empty(self):
        assert cross_entropy(np.zeros((0, 2)), []) == 0.0


class TestActivations:
    def test_relu_and_grad(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x), [0.0, 0.0, 2.0])
        assert np.allclose(relu_grad(x), [0.0, 0.0, 1.0])

    def test_tanh_grad_matches_numeric(self):
        x = np.linspace(-2, 2, 9)
        eps = 1e-6
        numeric = (np.tanh(x + eps) - np.tanh(x - eps)) / (2 * eps)
        assert np.allclose(tanh_grad(x), numeric, atol=1e-6)

    def test_sigmoid_range_and_symmetry(self):
        x = np.array([-50.0, -1.0, 0.0, 1.0, 50.0])
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert s[2] == pytest.approx(0.5)
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_sigmoid_extreme_values_stable(self):
        assert np.isfinite(sigmoid(np.array([1000.0, -1000.0]))).all()

    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [1000.0, 1000.0, 1000.0]])
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.isfinite(probabilities).all()

    def test_softmax_orders_by_logit(self):
        probabilities = softmax(np.array([[1.0, 3.0, 2.0]]))
        assert np.argmax(probabilities) == 1

    def test_get_activation_known_and_unknown(self):
        function, grad = get_activation("relu")
        assert function is relu
        with pytest.raises(ValueError):
            get_activation("gelu")
