"""Batched (stacked-parameter) model primitives vs the serial reference.

The vectorized multi-coalition trainer leans on ``batch_gradient`` /
``batch_predict`` being *per-slice identical* to the serial `_gradient` /
``predict`` — these tests pin that down bitwise for every model that
advertises ``supports_vectorized``, and check the base-class per-slice
defaults for one that does not (the CNN).
"""

import numpy as np
import pytest

from repro.datasets import make_classification_blobs
from repro.models import (
    GradientBoostedTrees,
    LogisticRegressionModel,
    MLPClassifier,
    SimpleCNN,
)
from repro.models.linear import LinearRegressionModel

B, M, F, C = 6, 9, 5, 3


def stacked_models():
    return [
        LogisticRegressionModel(n_features=F, n_classes=C),
        MLPClassifier(n_features=F, n_classes=C, hidden_sizes=(4, 3)),
        LinearRegressionModel(n_features=F),
    ]


def targets_for(model, rng, shape):
    if isinstance(model, LinearRegressionModel):
        return rng.normal(size=shape)
    return rng.integers(0, C, size=shape)


class TestSupportsVectorizedFlag:
    def test_vectorized_models_advertise_it(self):
        for model in stacked_models():
            assert model.supports_vectorized

    def test_cnn_and_gbdt_do_not(self):
        assert not SimpleCNN(image_size=6, n_classes=2).supports_vectorized
        assert not getattr(
            GradientBoostedTrees(n_classes=2), "supports_vectorized", False
        )


class TestBatchGradient:
    @pytest.mark.parametrize("model", stacked_models(), ids=lambda m: type(m).__name__)
    def test_bitwise_identical_to_per_slice_gradient(self, model):
        rng = np.random.default_rng(0)
        parameters = rng.normal(size=(B, model.num_parameters()))
        features = rng.normal(size=(B, M, F))
        targets = targets_for(model, rng, (B, M))
        batched = model.batch_gradient(parameters, features, targets)
        reference = np.stack(
            [model._gradient(parameters[b], features[b], targets[b]) for b in range(B)]
        )
        assert batched.shape == (B, model.num_parameters())
        np.testing.assert_array_equal(batched, reference)

    def test_default_per_slice_loop_for_cnn(self):
        model = SimpleCNN(image_size=6, n_classes=2, n_filters=2)
        rng = np.random.default_rng(1)
        parameters = rng.normal(size=(3, model.num_parameters()))
        features = rng.normal(size=(3, 4, 6, 6))
        targets = rng.integers(0, 2, size=(3, 4))
        batched = model.batch_gradient(parameters, features, targets)
        reference = np.stack(
            [model._gradient(parameters[b], features[b], targets[b]) for b in range(3)]
        )
        np.testing.assert_array_equal(batched, reference)

    def test_rejects_wrong_parameter_shape(self):
        model = LogisticRegressionModel(n_features=F, n_classes=C)
        with pytest.raises(ValueError, match="stacked parameters"):
            model.batch_gradient(
                np.zeros(model.num_parameters()), np.zeros((1, M, F)), np.zeros((1, M))
            )


class TestBatchPredictAndEvaluate:
    @pytest.mark.parametrize("model", stacked_models(), ids=lambda m: type(m).__name__)
    def test_predict_matches_per_slice(self, model):
        rng = np.random.default_rng(2)
        parameters = rng.normal(size=(B, model.num_parameters()))
        features = rng.normal(size=(11, F))
        batched = model.batch_predict(parameters, features)
        engine = model.clone()
        for b in range(B):
            engine.set_parameters(parameters[b])
            np.testing.assert_array_equal(batched[b], engine.predict(features))

    def test_evaluate_matches_per_slice(self):
        dataset = make_classification_blobs(40, n_features=F, n_classes=C, seed=3)
        model = LogisticRegressionModel(n_features=F, n_classes=C)
        rng = np.random.default_rng(3)
        parameters = rng.normal(size=(B, model.num_parameters()))
        values = model.batch_evaluate(parameters, dataset)
        engine = model.clone()
        for b in range(B):
            engine.set_parameters(parameters[b])
            assert values[b] == engine.evaluate(dataset)


class TestBatchInitParameters:
    @pytest.mark.parametrize("model", stacked_models(), ids=lambda m: type(m).__name__)
    def test_consumes_generators_like_initialize(self, model):
        seeds = [11, 12, 13]
        batched = model.batch_init_parameters(
            [np.random.default_rng(s) for s in seeds]
        )
        for row, seed in zip(batched, seeds):
            reference = model.clone().initialize(np.random.default_rng(seed))
            np.testing.assert_array_equal(row, reference.get_parameters())

    def test_empty_batch(self):
        model = LogisticRegressionModel(n_features=F, n_classes=C)
        assert model.batch_init_parameters([]).shape == (0, model.num_parameters())
