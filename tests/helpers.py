"""Shared test helpers (importable from test modules, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.fl import TabularUtility


def monotone_game(n_clients: int, seed: int = 0, concavity: float = 0.6) -> TabularUtility:
    """A random monotone, concave utility game resembling FL model accuracy.

    Each client has a weight; ``U(S) = 0.1 + 0.85 · (Σ_S w)^c / (Σ_N w)^c``,
    so utility grows monotonically in the coalition and saturates — the same
    qualitative behaviour as model accuracy when more data joins the
    federation.
    """
    generator = np.random.default_rng(seed)
    weights = generator.uniform(0.2, 1.0, size=n_clients)
    total = weights.sum() ** concavity

    def function(coalition: frozenset) -> float:
        if not coalition:
            return 0.1
        mass = sum(weights[i] for i in coalition) ** concavity
        return 0.1 + 0.85 * mass / total

    return TabularUtility.from_function(n_clients, function)
