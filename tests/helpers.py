"""Shared test helpers (importable from test modules, unlike conftest)."""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.fl import TabularUtility


def monotone_game(n_clients: int, seed: int = 0, concavity: float = 0.6) -> TabularUtility:
    """A random monotone, concave utility game resembling FL model accuracy.

    Each client has a weight; ``U(S) = 0.1 + 0.85 · (Σ_S w)^c / (Σ_N w)^c``,
    so utility grows monotonically in the coalition and saturates — the same
    qualitative behaviour as model accuracy when more data joins the
    federation.
    """
    generator = np.random.default_rng(seed)
    weights = generator.uniform(0.2, 1.0, size=n_clients)
    total = weights.sum() ** concavity

    def function(coalition: frozenset) -> float:
        if not coalition:
            return 0.1
        mass = sum(weights[i] for i in coalition) ** concavity
        return 0.1 + 0.85 * mass / total

    return TabularUtility.from_function(n_clients, function)


class FleetHarness:
    """A fleet test rig: one queue dir, disk stores, in-process worker threads.

    Subprocess workers are exercised by the dedicated fleet tests; for the
    cross-backend matrices (parity, anytime) thread workers run the *same*
    ``run_worker`` loop against the same SQLite queue without paying Python
    startup per test.  ``executor()`` hands out a fresh
    :class:`~repro.fleet.FleetExecutor` on the shared queue;
    ``fresh_store_path()`` a new SQLite store file for utilities to open.
    """

    def __init__(self, root, n_workers: int = 1, worker_backend: str = "serial"):
        from repro.fleet.worker import run_worker

        self.root = str(root)
        self.queue_dir = os.path.join(self.root, "queue")
        os.makedirs(self.queue_dir, exist_ok=True)
        self._stores = 0
        self._stop = threading.Event()
        self._threads = []
        for index in range(n_workers):
            thread = threading.Thread(
                target=run_worker,
                kwargs=dict(
                    queue_dir=self.queue_dir,
                    backend=worker_backend,
                    poll_interval=0.01,
                    worker_id=f"test-worker-{index}",
                    stop_event=self._stop,
                ),
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def executor(self, **overrides):
        from repro.fleet import FleetExecutor

        options = dict(
            queue_dir=self.queue_dir,
            lease_seconds=10.0,
            poll_interval=0.01,
            stall_timeout=60.0,
        )
        options.update(overrides)
        return FleetExecutor(**options)

    def fresh_store_path(self) -> str:
        self._stores += 1
        return os.path.join(self.root, f"store-{self._stores}.sqlite")

    def training_counts(self):
        from repro.fleet import LeaseQueue

        with LeaseQueue(self.queue_dir) as queue:
            return queue.training_counts()

    def close(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)
