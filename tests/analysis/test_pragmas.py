"""The ``# repro: allow[...]`` suppression pragma: honest suppressions only.

A pragma must name registered codes and justify itself with ``reason=``;
anything else is itself a finding (RPR000), and a malformed pragma can never
suppress the finding that reports it."""

from __future__ import annotations

from repro.analysis import META_CODE

from tests.analysis.conftest import codes_of


class TestSuppression:
    def test_same_line_pragma_with_reason_suppresses(self, check_source):
        findings = check_source(
            """
            import time

            def stamp():
                return time.time()  # repro: allow[RPR002] reason=telemetry only
            """,
            codes=["RPR002"],
        )
        assert findings == []

    def test_own_line_pragma_covers_the_next_line(self, check_source):
        findings = check_source(
            """
            import time

            def stamp():
                # repro: allow[RPR002] reason=manifest telemetry, not identity
                return time.time()
            """,
            codes=["RPR002"],
        )
        assert findings == []

    def test_pragma_only_covers_its_own_code(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def draw():
                return np.random.default_rng()  # repro: allow[RPR002] reason=wrong code
            """,
            codes=["RPR001", "RPR002"],
        )
        assert codes_of(findings) == ["RPR001"]

    def test_pragma_on_unrelated_line_does_not_suppress(self, check_source):
        findings = check_source(
            """
            import time

            # repro: allow[RPR002] reason=too far away to cover line 6
            x = 1

            def stamp():
                return time.time()
            """,
            codes=["RPR002"],
        )
        assert codes_of(findings) == ["RPR002"]

    def test_multiple_codes_in_one_pragma(self, check_source):
        findings = check_source(
            """
            import time
            import numpy as np

            def stamp():
                return (time.time(), np.random.default_rng())  # repro: allow[RPR001,RPR002] reason=fixture
            """,
            codes=["RPR001", "RPR002"],
        )
        assert findings == []


class TestPragmaHygiene:
    def test_missing_reason_is_a_finding_and_suppresses_nothing(self, check_source):
        findings = check_source(
            """
            import time

            def stamp():
                return time.time()  # repro: allow[RPR002]
            """,
            codes=["RPR002"],
        )
        assert sorted(codes_of(findings)) == [META_CODE, "RPR002"]
        meta = next(f for f in findings if f.code == META_CODE)
        assert "reason=" in meta.message

    def test_unknown_code_is_a_finding(self, check_source):
        findings = check_source(
            """
            x = 1  # repro: allow[RPR999] reason=typo'd code
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == [META_CODE]
        assert "RPR999" in findings[0].message

    def test_empty_code_list_is_a_finding(self, check_source):
        findings = check_source(
            """
            x = 1  # repro: allow[] reason=nothing named
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == [META_CODE]
        assert "no rule codes" in findings[0].message

    def test_pragma_shaped_text_in_docstring_is_ignored(self, check_source):
        # Documentation *about* the pragma must neither suppress nor error:
        # only real comment tokens count.
        findings = check_source(
            '''
            def helper():
                """Suppress with ``# repro: allow[RPRxyz] reason=...``."""
                return 1
            ''',
            codes=["RPR001"],
        )
        assert findings == []

    def test_pragma_shaped_string_literal_is_ignored(self, check_source):
        findings = check_source(
            """
            EXAMPLE = "# repro: allow[NOTACODE]"
            """,
            codes=["RPR001"],
        )
        assert findings == []

    def test_meta_code_is_not_suppressible(self, check_source):
        # RPR000 is the checker's own voice (parse errors, bad pragmas,
        # stale baselines); it is not a registered rule, so a pragma can
        # never name it — meta findings always reach the report.
        findings = check_source(
            """
            x = 1  # repro: allow[RPR000] reason=trying to silence the checker
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == [META_CODE]
        assert "unknown rule code" in findings[0].message
