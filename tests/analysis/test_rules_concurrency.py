"""RPR004/RPR006/RPR007: picklability across the process backend, lock
discipline on shared state, and swallowed broad exceptions."""

from __future__ import annotations

from tests.analysis.conftest import codes_of


class TestUnpicklableCallable:
    def test_lambda_into_submission_path_fires(self, check_source):
        findings = check_source(
            """
            def run(oracle, coalitions):
                return oracle.evaluate_batch(coalitions, lambda c: float(len(c)))
            """,
            codes=["RPR004"],
        )
        assert codes_of(findings) == ["RPR004"]
        assert "test_picklability" in findings[0].message

    def test_lambda_as_evaluator_keyword_fires_once(self, check_source):
        findings = check_source(
            """
            def build(oracle_cls, coalitions):
                return oracle_cls(evaluator=lambda c: 0.0)
            """,
            codes=["RPR004"],
        )
        assert codes_of(findings) == ["RPR004"]

    def test_lambda_model_factory_fires(self, check_source):
        findings = check_source(
            """
            def build(spec_cls, Model):
                return spec_cls(model_factory=lambda: Model(n_features=8))
            """,
            codes=["RPR004"],
        )
        assert codes_of(findings) == ["RPR004"]

    def test_partial_model_factory_is_the_sanctioned_form(self, check_source):
        findings = check_source(
            """
            from functools import partial

            def build(spec_cls, Model):
                return spec_cls(model_factory=partial(Model, n_features=8))
            """,
            codes=["RPR004"],
        )
        assert findings == []

    def test_local_function_into_submit_fires(self, check_source):
        findings = check_source(
            """
            def run(pool, payload):
                def work():
                    return payload + 1

                return pool.submit(work)
            """,
            codes=["RPR004"],
        )
        assert codes_of(findings) == ["RPR004"]
        assert "closures cannot be pickled" in findings[0].message

    def test_module_level_function_is_silent(self, check_source):
        findings = check_source(
            """
            def work(payload):
                return payload + 1

            def run(pool, payload):
                return pool.submit(work, payload)
            """,
            codes=["RPR004"],
        )
        assert findings == []

    def test_does_not_apply_to_tests(self, check_source):
        # Test code drives the serial/thread backends with lambdas all over;
        # only library code must stay process-safe.
        findings = check_source(
            """
            def test_oracle(oracle):
                assert oracle.evaluate_batch([(0,)], lambda c: 1.0) == [1.0]
            """,
            filename="tests/test_mod.py",
            codes=["RPR004"],
        )
        assert findings == []


class TestUnlockedSharedMutation:
    def test_unlocked_write_in_lock_owning_class_fires(self, check_source):
        findings = check_source(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    self._data[key] = value
            """,
            codes=["RPR006"],
        )
        assert codes_of(findings) == ["RPR006"]
        assert "self._data" in findings[0].message

    def test_write_under_lock_is_silent(self, check_source):
        findings = check_source(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._data[key] = value
            """,
            codes=["RPR006"],
        )
        assert findings == []

    def test_lock_transfer_docstring_exempts_helper(self, check_source):
        # The UtilityCache idiom: a private helper documents that its caller
        # must hold the lock, transferring the obligation up the stack.
        findings = check_source(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, key, value):
                    with self._lock:
                        self._insert(key, value)

                def _insert(self, key, value):
                    \"\"\"Insert an entry; the caller must hold the lock.\"\"\"
                    self._data[key] = value
            """,
            codes=["RPR006"],
        )
        assert findings == []

    def test_init_is_exempt(self, check_source):
        findings = check_source(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}
                    self._hits = 0
            """,
            codes=["RPR006"],
        )
        assert findings == []

    def test_lockless_class_is_out_of_scope(self, check_source):
        # No lock, no declared sharing: single-threaded mutation is fine.
        findings = check_source(
            """
            class Counter:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
            """,
            codes=["RPR006"],
        )
        assert findings == []

    def test_augassign_outside_lock_fires(self, check_source):
        findings = check_source(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def record(self):
                    self.hits += 1
            """,
            codes=["RPR006"],
        )
        assert codes_of(findings) == ["RPR006"]


class TestSwallowedBroadException:
    def test_swallowed_broad_except_fires(self, check_source):
        findings = check_source(
            """
            def read(path):
                try:
                    return open(path).read()
                except Exception:
                    return None
            """,
            codes=["RPR007"],
        )
        assert codes_of(findings) == ["RPR007"]

    def test_bare_except_fires(self, check_source):
        findings = check_source(
            """
            def read(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            codes=["RPR007"],
        )
        assert codes_of(findings) == ["RPR007"]
        assert "bare except" in findings[0].message

    def test_broad_except_in_tuple_fires(self, check_source):
        findings = check_source(
            """
            def read(path):
                try:
                    return open(path).read()
                except (OSError, Exception):
                    return None
            """,
            codes=["RPR007"],
        )
        assert codes_of(findings) == ["RPR007"]

    def test_narrow_except_is_the_sanctioned_recovery(self, check_source):
        # The store's corruption recovery: anticipated failure modes only.
        findings = check_source(
            """
            def read(path):
                try:
                    return open(path).read()
                except (OSError, ValueError):
                    return None
            """,
            codes=["RPR007"],
        )
        assert findings == []

    def test_broad_except_that_reraises_is_silent(self, check_source):
        findings = check_source(
            """
            def read(path):
                try:
                    return open(path).read()
                except Exception:
                    cleanup(path)
                    raise
            """,
            codes=["RPR007"],
        )
        assert findings == []

    def test_broad_except_that_logs_is_silent(self, check_source):
        findings = check_source(
            """
            import logging

            def read(path):
                try:
                    return open(path).read()
                except Exception as error:
                    logging.getLogger(__name__).warning("read failed: %s", error)
                    return None
            """,
            codes=["RPR007"],
        )
        assert findings == []
