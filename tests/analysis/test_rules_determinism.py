"""RPR001/RPR002/RPR003: each fires on its positive fixture, stays silent on
the negative one, and only speaks when the import resolution *proves* the
flagged name is what it looks like."""

from __future__ import annotations

from tests.analysis.conftest import codes_of


class TestUnseededRandomness:
    def test_unseeded_default_rng_fires(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]
        assert "without a seed" in findings[0].message

    def test_seeded_default_rng_is_silent(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed).random()
            """,
            codes=["RPR001"],
        )
        assert findings == []

    def test_from_import_alias_resolves(self, check_source):
        findings = check_source(
            """
            from numpy.random import default_rng as make_rng

            def draw():
                return make_rng().random()
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]

    def test_unrelated_default_rng_name_is_silent(self, check_source):
        # No numpy import: the call is unprovable and the checker stays quiet.
        findings = check_source(
            """
            def default_rng():
                return 4

            def draw():
                return default_rng()
            """,
            codes=["RPR001"],
        )
        assert findings == []

    def test_legacy_numpy_random_module_fires(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def draw(n):
                return np.random.rand(n)
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]
        assert "legacy global-state" in findings[0].message

    def test_generator_constructors_are_allowed(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def build(seed):
                return np.random.Generator(np.random.PCG64(seed))
            """,
            codes=["RPR001"],
        )
        assert findings == []

    def test_stdlib_random_fires(self, check_source):
        findings = check_source(
            """
            import random

            def draw():
                return random.random()
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]
        assert "stdlib random" in findings[0].message

    def test_magic_inline_seed_fires_in_library_code(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def draw():
                return np.random.default_rng(12345).random()
            """,
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]
        assert "magic inline seed" in findings[0].message

    def test_module_level_constant_seed_is_the_sanctioned_form(self, check_source):
        findings = check_source(
            """
            import numpy as np

            TEMPLATE_SEED = 12345

            def draw():
                return np.random.default_rng(TEMPLATE_SEED).random()
            """,
            codes=["RPR001"],
        )
        assert findings == []

    def test_magic_inline_seed_is_tolerated_in_tests(self, check_source):
        findings = check_source(
            """
            import numpy as np

            def helper():
                return np.random.default_rng(12345).random()
            """,
            filename="tests/test_mod.py",
            codes=["RPR001"],
        )
        assert findings == []

    def test_unseeded_rng_still_fires_in_tests(self, check_source):
        # Unseeded entropy is banned everywhere, including test code.
        findings = check_source(
            """
            import numpy as np

            def helper():
                return np.random.default_rng().random()
            """,
            filename="tests/test_mod.py",
            codes=["RPR001"],
        )
        assert codes_of(findings) == ["RPR001"]


class TestAmbientStateRead:
    def test_wall_clock_fires(self, check_source):
        findings = check_source(
            """
            import time

            def stamp():
                return time.time()
            """,
            codes=["RPR002"],
        )
        assert codes_of(findings) == ["RPR002"]
        assert "time.time()" in findings[0].message

    def test_os_environ_fires(self, check_source):
        findings = check_source(
            """
            import os

            def debug_enabled():
                return os.environ.get("DEBUG") == "1"
            """,
            codes=["RPR002"],
        )
        assert codes_of(findings) == ["RPR002"]
        assert "os.environ" in findings[0].message

    def test_datetime_now_fires(self, check_source):
        findings = check_source(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            codes=["RPR002"],
        )
        assert codes_of(findings) == ["RPR002"]

    def test_monotonic_timing_is_allowed(self, check_source):
        # perf_counter / monotonic measure duration; they never become content.
        findings = check_source(
            """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """,
            codes=["RPR002"],
        )
        assert findings == []

    def test_does_not_apply_to_tests(self, check_source):
        findings = check_source(
            """
            import time

            def stamp():
                return time.time()
            """,
            filename="tests/test_mod.py",
            codes=["RPR002"],
        )
        assert findings == []

    def test_fingerprint_module_gets_the_fatal_message(self, check_source):
        findings = check_source(
            """
            import time

            def fingerprint(spec):
                return hash((spec, time.time()))
            """,
            filename="repro/store/fingerprint.py",
            codes=["RPR002"],
        )
        assert codes_of(findings) == ["RPR002"]
        assert "content identity" in findings[0].message


class TestUnstableIterationOrder:
    def test_for_loop_over_set_literal_fires(self, check_source):
        findings = check_source(
            """
            def total(values):
                acc = 0.0
                for v in {1.0, 2.0, 3.0}:
                    acc += v
                return acc
            """,
            codes=["RPR003"],
        )
        assert codes_of(findings) == ["RPR003"]

    def test_sorted_wrapper_is_silent(self, check_source):
        findings = check_source(
            """
            def total(values):
                acc = 0.0
                for v in sorted({1.0, 2.0, 3.0}):
                    acc += v
                return acc
            """,
            codes=["RPR003"],
        )
        assert findings == []

    def test_comprehension_over_set_call_fires(self, check_source):
        findings = check_source(
            """
            def dedupe(items):
                return [x * 2 for x in set(items)]
            """,
            codes=["RPR003"],
        )
        assert codes_of(findings) == ["RPR003"]

    def test_sum_of_set_fires(self, check_source):
        findings = check_source(
            """
            def total(a, b):
                return sum({a, b})
            """,
            codes=["RPR003"],
        )
        assert codes_of(findings) == ["RPR003"]

    def test_set_algebra_result_fires(self, check_source):
        findings = check_source(
            """
            def merge(a, b):
                return list(set(a).union(b))
            """,
            codes=["RPR003"],
        )
        assert codes_of(findings) == ["RPR003"]

    def test_dict_iteration_is_deliberately_allowed(self, check_source):
        # Dicts are insertion-ordered; the anytime checkpoint codec relies
        # on exactly that, so plain dict iteration must never be flagged.
        findings = check_source(
            """
            def keys_of(payload):
                return [key for key in payload]
            """,
            codes=["RPR003"],
        )
        assert findings == []

    def test_membership_tests_are_silent(self, check_source):
        findings = check_source(
            """
            def allowed(name):
                return name in {"a", "b"}
            """,
            codes=["RPR003"],
        )
        assert findings == []

    def test_applies_to_tests_too(self, check_source):
        findings = check_source(
            """
            def helper():
                return sum({1.0, 2.0})
            """,
            filename="tests/test_mod.py",
            codes=["RPR003"],
        )
        assert codes_of(findings) == ["RPR003"]
