"""Engine + CLI behavior: discovery, selection, output contract, exit codes —
and the repository-wide self-check the CI gate runs."""

from __future__ import annotations

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    META_CODE,
    RULES,
    all_codes,
    check_paths,
    iter_python_files,
    resolve_selection,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

UNSEEDED = """\
import numpy as np


def draw():
    return np.random.default_rng().random()
"""


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestEngine:
    def test_discovery_skips_caches_and_sorts(self, tmp_path):
        _write(tmp_path, "pkg/b.py", "x = 1\n")
        _write(tmp_path, "pkg/a.py", "x = 1\n")
        _write(tmp_path, "pkg/__pycache__/a.cpython-311.py", "x = 1\n")
        _write(tmp_path, "pkg/readme.txt", "not python\n")
        files = list(iter_python_files([tmp_path / "pkg"]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        module = _write(tmp_path, "broken.py", "def f(:\n    pass\n")
        report = check_paths([module])
        assert [f.code for f in report.findings] == [META_CODE]
        assert "does not parse" in report.findings[0].message
        assert report.exit_code == 1

    def test_select_and_ignore(self, tmp_path):
        module = _write(
            tmp_path,
            "mod.py",
            """
            import time
            import numpy as np

            def f():
                return (time.time(), np.random.default_rng())
            """,
        )
        both = check_paths([module])
        assert sorted(f.code for f in both.findings) == ["RPR001", "RPR002"]
        only_rng = check_paths([module], select=["RPR001"])
        assert [f.code for f in only_rng.findings] == ["RPR001"]
        no_rng = check_paths([module], ignore=["RPR001"])
        assert [f.code for f in no_rng.findings] == ["RPR002"]

    def test_unknown_selection_code_raises(self):
        with pytest.raises(ValueError, match="RPR999"):
            resolve_selection(select=["RPR999"])

    def test_registry_has_the_documented_rules(self):
        assert all_codes() == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
        ]
        for rule in RULES.values():
            assert rule.summary, rule.code
            assert re.fullmatch(r"RPR\d{3}", rule.code)


class TestCli:
    def test_findings_print_file_line_col_code_and_exit_1(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", UNSEEDED)
        exit_code = main(["check", "mod.py"])
        out = capsys.readouterr()
        assert exit_code == 1
        assert re.search(r"^mod\.py:5:12: RPR001 ", out.out, re.MULTILINE)
        assert "1 finding(s) in 1 file(s)" in out.err

    def test_clean_tree_exits_0(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", "x = 1\n")
        assert main(["check", "mod.py"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", UNSEEDED)
        exit_code = main(["check", "--json", "mod.py"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        [finding] = payload["findings"]
        assert finding["code"] == "RPR001"
        assert finding["path"] == "mod.py"
        assert finding["line"] == 5

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out

    def test_list_rules_json(self, capsys):
        assert main(["check", "--json", "--list-rules"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == all_codes()
        assert all("summary" in entry for entry in payload.values())

    def test_unknown_select_code_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", "x = 1\n")
        assert main(["check", "--select", "RPR999", "mod.py"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_write_baseline_requires_baseline_path(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", "x = 1\n")
        assert main(["check", "--write-baseline", "mod.py"]) == 2
        assert "--write-baseline requires" in capsys.readouterr().err

    def test_baseline_workflow_end_to_end(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "mod.py", UNSEEDED)
        assert (
            main(["check", "--baseline", "bl.json", "--write-baseline", "mod.py"])
            == 0
        )
        capsys.readouterr()
        # Baselined: gate passes without touching the code.
        assert main(["check", "--baseline", "bl.json", "mod.py"]) == 0
        assert "1 suppressed" in capsys.readouterr().err
        # Fixed: the now-stale entry fails the gate until it is removed.
        _write(tmp_path, "mod.py", "x = 1\n")
        assert main(["check", "--baseline", "bl.json", "mod.py"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out


class TestRepositoryContract:
    def test_src_and_tests_are_clean_with_an_empty_baseline(self):
        # The acceptance gate of this subsystem: the repository satisfies
        # its own contracts, with every intentional exception pragma'd.
        report = check_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert report.findings == [], "\n".join(
            f.format() for f in report.findings
        )
        assert report.files_checked > 100

    def test_reintroducing_unseeded_rng_into_core_fails_the_gate(self, tmp_path):
        # What the CI job protects against: an unseeded generator slipping
        # back into library code makes `repro check` (and the check job) red.
        core_like = _write(tmp_path, "src/repro/core/regression.py", UNSEEDED)
        report = check_paths([core_like])
        assert report.exit_code == 1
        assert [f.code for f in report.findings] == ["RPR001"]
