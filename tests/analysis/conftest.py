"""Fixtures for the contract-checker suite.

Rule fixtures are source snippets written to ``tmp_path`` and checked
through the real engine entry points (:func:`repro.analysis.check_file`),
so every test also exercises parsing, context building and suppression —
not just the rule's ``check`` method in isolation.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import RULES, check_file


@pytest.fixture
def check_source(tmp_path):
    """Write a snippet to disk and run the checker over it.

    ``filename`` controls rule scoping: the default ``mod.py`` is library
    code; pass ``tests/test_mod.py`` to check the snippet as test code.
    ``codes`` restricts the run to specific rules (default: all).
    """

    def _check(source, *, filename="mod.py", codes=None):
        path = tmp_path / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        rules = (
            list(RULES.values())
            if codes is None
            else [RULES[code] for code in codes]
        )
        findings, _suppressed = check_file(path, rules)
        return findings

    return _check


def codes_of(findings):
    return [finding.code for finding in findings]
