"""Baseline workflow: entries suppress matching findings one-for-one, stale
entries fail the gate, and the file round-trips losslessly."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    META_CODE,
    Finding,
    check_paths,
    load_baseline,
    write_baseline,
)

VIOLATING = """\
import time


def stamp():
    return time.time()
"""


def _write_module(tmp_path, source=VIOLATING, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_round_trip(tmp_path):
    findings = [
        Finding("a.py", 3, 1, "RPR002", "ambient read"),
        Finding("b.py", 7, 5, "RPR001", "unseeded rng"),
    ]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    assert load_baseline(baseline_path) == sorted(findings)


def test_unsupported_version_is_rejected(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text('{"version": 99, "findings": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="baseline version"):
        load_baseline(baseline_path)


def test_baseline_suppresses_known_findings(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    module = _write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"

    before = check_paths([module])
    assert [f.code for f in before.findings] == ["RPR002"]
    write_baseline(before.findings, baseline_path)

    after = check_paths([module], baseline=baseline_path)
    assert after.ok
    assert after.exit_code == 0
    assert after.suppressed_by_baseline == 1


def test_new_finding_is_not_covered_by_the_baseline(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    module = _write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(check_paths([module]).findings, baseline_path)

    # A second ambient read on a new line is a new finding: the existing
    # entry matches one occurrence at most.
    _write_module(
        tmp_path,
        VIOLATING + "\n\ndef stamp_again():\n    return time.time()\n",
    )
    report = check_paths([module], baseline=baseline_path)
    assert report.exit_code == 1
    assert [f.code for f in report.findings] == ["RPR002"]
    assert report.suppressed_by_baseline == 1


def test_stale_entry_fails_the_gate(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    module = _write_module(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(check_paths([module]).findings, baseline_path)

    # Fix the violation: the baseline entry is now stale and must itself
    # fail the gate so the file keeps shrinking toward empty.
    _write_module(tmp_path, "def stamp():\n    return 0.0\n")
    report = check_paths([module], baseline=baseline_path)
    assert report.exit_code == 1
    assert [f.code for f in report.findings] == [META_CODE]
    assert "stale baseline entry" in report.findings[0].message
    assert report.findings[0].path == str(baseline_path)


def test_baseline_key_ignores_column_and_message():
    entry = Finding("a.py", 3, 1, "RPR002", "old wording")
    moved_col = Finding("a.py", 3, 9, "RPR002", "new wording")
    moved_line = Finding("a.py", 4, 1, "RPR002", "old wording")
    assert entry.baseline_key() == moved_col.baseline_key()
    assert entry.baseline_key() != moved_line.baseline_key()
