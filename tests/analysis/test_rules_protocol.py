"""RPR005: incremental estimators must keep EstimatorState checkpoints
lossless — interrupt -> serialize -> resume reproduces the uninterrupted
run bitwise."""

from __future__ import annotations

from tests.analysis.conftest import codes_of


class TestCheckpointIncomplete:
    def test_step_without_init_fires(self, check_source):
        findings = check_source(
            """
            class Estimator:
                def _incremental_step(self, payload, rng):
                    payload["t"] = payload.get("t", 0) + 1
            """,
            codes=["RPR005"],
        )
        assert codes_of(findings) == ["RPR005"]
        assert "_incremental_init" in findings[0].message

    def test_full_protocol_drawing_from_framework_rng_is_silent(self, check_source):
        findings = check_source(
            """
            class Estimator:
                def _incremental_init(self, payload, rng):
                    payload["sums"] = [0.0] * self.n
                    payload["t"] = 0

                def _incremental_step(self, payload, rng):
                    order = rng.permutation(self.n)
                    payload["t"] += 1
                    return order
            """,
            codes=["RPR005"],
        )
        assert findings == []

    def test_fresh_generator_inside_step_fires(self, check_source):
        findings = check_source(
            """
            import numpy as np

            class Estimator:
                def _incremental_init(self, payload, rng):
                    payload["t"] = 0

                def _incremental_step(self, payload, rng):
                    shadow = np.random.default_rng(payload["t"])
                    payload["t"] += 1
                    return shadow.permutation(self.n)
            """,
            codes=["RPR005"],
        )
        assert codes_of(findings) == ["RPR005"]
        assert "invisible to the" in findings[0].message

    def test_spawn_rng_inside_init_fires(self, check_source):
        findings = check_source(
            """
            from repro.utils.rng import spawn_rng

            class Estimator:
                def _incremental_init(self, payload, rng):
                    payload["streams"] = spawn_rng(rng, 4)

                def _incremental_step(self, payload, rng):
                    payload["t"] = payload.get("t", 0) + 1
            """,
            codes=["RPR005"],
        )
        assert codes_of(findings) == ["RPR005"]

    def test_storing_live_rng_in_payload_fires(self, check_source):
        findings = check_source(
            """
            class Estimator:
                def _incremental_init(self, payload, rng):
                    payload["rng"] = rng

                def _incremental_step(self, payload, rng):
                    payload["t"] = payload.get("t", 0) + 1
            """,
            codes=["RPR005"],
        )
        assert codes_of(findings) == ["RPR005"]
        assert "capture_rng_state" in findings[0].message

    def test_live_rng_as_dict_literal_value_fires(self, check_source):
        findings = check_source(
            """
            class Estimator:
                def _incremental_init(self, payload, rng):
                    payload.update({"rng": rng, "t": 0})

                def _incremental_step(self, payload, rng):
                    payload["t"] += 1
            """,
            codes=["RPR005"],
        )
        assert codes_of(findings) == ["RPR005"]

    def test_rng_construction_outside_protocol_methods_is_out_of_scope(
        self, check_source
    ):
        # run()-style one-shot entry points manage their own generator; only
        # the checkpointable incremental protocol is constrained.
        findings = check_source(
            """
            import numpy as np

            class Estimator:
                def run(self, seed):
                    rng = np.random.default_rng(seed)
                    return rng.permutation(self.n)
            """,
            codes=["RPR005"],
        )
        assert findings == []

    def test_real_estimators_satisfy_the_protocol(self):
        # The shipped incremental estimators are the rule's reference
        # implementations: the checker must stay clean on them.
        from pathlib import Path

        from repro.analysis import RULES, check_file

        core = Path(__file__).resolve().parents[2] / "src" / "repro" / "core"
        rule = RULES["RPR005"]
        for module in sorted(core.glob("*.py")):
            findings, _ = check_file(module, [rule])
            assert findings == [], f"{module.name}: {findings}"
