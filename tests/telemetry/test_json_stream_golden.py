"""Golden-file pin of the --json-stream event schema.

Downstream consumers (dashboards, the service PR on the roadmap) parse these
events line-by-line; the golden file makes any key rename/removal an explicit,
reviewed change rather than an accidental one.
"""

import json
from pathlib import Path

from repro.cli import main

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data" / "golden_json_stream_events.json").read_text()
)

TASK_FLAGS = [
    "--task", "adult",
    "--model", "logistic",
    "--n-clients", "3",
    "--scale", "tiny",
    "--seed", "0",
    "--algorithms", "MC-Shapley,IPSS",
]


def stream_events(capsys, tmp_path, *extra):
    code = main(
        ["run", "--run-dir", str(tmp_path / "run"), *TASK_FLAGS, "--json-stream", *extra]
    )
    out = capsys.readouterr().out
    assert code == 0
    return [json.loads(line) for line in out.strip().splitlines()]


class TestJsonStreamSchema:
    def test_snapshot_events_match_golden_keys(self, capsys, tmp_path):
        events = stream_events(capsys, tmp_path)
        snapshots = [e for e in events if e["event"] == "snapshot"]
        assert snapshots
        for snapshot in snapshots:
            assert sorted(snapshot) == GOLDEN["snapshot_keys"]

    def test_snapshot_events_without_telemetry_drop_only_metrics(
        self, capsys, tmp_path
    ):
        events = stream_events(capsys, tmp_path, "--no-telemetry")
        snapshots = [e for e in events if e["event"] == "snapshot"]
        assert snapshots
        for snapshot in snapshots:
            assert sorted(snapshot) == GOLDEN["snapshot_keys_without_telemetry"]

    def test_report_event_matches_golden_keys(self, capsys, tmp_path):
        report = stream_events(capsys, tmp_path)[-1]
        assert report["event"] == "report"
        assert sorted(report) == GOLDEN["report_keys"]
        assert sorted(report["accounting"]) == GOLDEN["accounting_keys"]

    def test_heartbeat_events_match_golden_keys(self, capsys, tmp_path):
        events = stream_events(capsys, tmp_path, "--heartbeat", "0.002")
        heartbeats = [e for e in events if e["event"] == "heartbeat"]
        assert heartbeats, "expected heartbeats at a 2ms interval"
        for heartbeat in heartbeats:
            assert sorted(heartbeat) == GOLDEN["heartbeat_keys"]
            assert heartbeat["elapsed_seconds"] >= 0.0

    def test_heartbeat_off_by_default(self, capsys, tmp_path):
        events = stream_events(capsys, tmp_path)
        assert not [e for e in events if e["event"] == "heartbeat"]

    def test_metric_deltas_are_flat_name_to_scalar_or_count_sum(
        self, capsys, tmp_path
    ):
        events = stream_events(capsys, tmp_path)
        snapshots = [e for e in events if e["event"] == "snapshot"]
        saw_delta = False
        for snapshot in snapshots:
            for name, value in snapshot["metrics"].items():
                saw_delta = True
                assert isinstance(name, str)
                if isinstance(value, dict):
                    assert sorted(value) == ["count", "sum"]
                else:
                    assert isinstance(value, (int, float))
        assert saw_delta, "expected at least one non-empty metric delta"
