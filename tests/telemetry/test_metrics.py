"""Tests for the metrics half of the telemetry subsystem."""

import pytest

from repro.telemetry.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    prometheus_text,
    registry_from_dict,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("store.hit")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_merge_adds(self):
        counter = Counter("x")
        counter.inc(3)
        counter.merge({"kind": "counter", "value": 7.0})
        assert counter.value == 10.0


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("pool")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_merge_keeps_max(self):
        gauge = Gauge("pool")
        gauge.set(2)
        gauge.merge({"kind": "gauge", "value": 5.0})
        assert gauge.value == 5.0


class TestHistogram:
    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("x", buckets=[])

    def test_observe_tracks_count_sum_min_max(self):
        histogram = Histogram("x", buckets=[1.0, 10.0])
        for value in (0.5, 3.0, 200.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(203.5)
        assert histogram.min == 0.5
        assert histogram.max == 200.0
        # one per bucket, last lands in the implicit overflow bucket
        assert histogram.counts == [1, 1, 1]

    def test_percentile_empty_is_none(self):
        assert Histogram("x", buckets=[1.0]).percentile(0.5) is None

    def test_percentile_bounds_validated(self):
        histogram = Histogram("x", buckets=[1.0])
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.0)

    def test_percentile_clamped_to_observed_range(self):
        """A single observation must report itself, not a bucket bound."""
        histogram = Histogram("x", buckets=[1.0, 10.0])
        histogram.observe(3.0)
        for q in (0.5, 0.9, 0.99):
            assert histogram.percentile(q) == 3.0

    def test_percentile_interpolates(self):
        histogram = Histogram("x", buckets=[10.0, 20.0])
        for value in (1.0, 2.0, 12.0, 18.0):
            histogram.observe(value)
        p50 = histogram.percentile(0.5)
        assert 1.0 <= p50 <= 10.0  # rank 2 of 4 falls in the first bucket
        assert histogram.percentile(0.99) <= 18.0

    def test_summary_shape(self):
        histogram = Histogram("x", buckets=[1.0])
        histogram.observe(0.5)
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "min", "max", "p50", "p90", "p99"}

    def test_merge_adds_counts(self):
        left = Histogram("x", buckets=[1.0, 2.0])
        right = Histogram("x", buckets=[1.0, 2.0])
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right.to_dict())
        assert left.count == 3
        assert left.counts == [1, 1, 1]
        assert left.min == 0.5
        assert left.max == 9.0

    def test_merge_rejects_different_buckets(self):
        left = Histogram("x", buckets=[1.0])
        right = Histogram("x", buckets=[2.0])
        with pytest.raises(ValueError):
            left.merge(right.to_dict())

    def test_default_bucket_families_are_sorted(self):
        for buckets in (SECONDS_BUCKETS, SIZE_BUCKETS, BYTES_BUCKETS):
            assert list(buckets) == sorted(buckets)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=[1.0])
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=[2.0])

    def test_roundtrip_through_dict(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("pool").set(4)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        rebuilt = registry_from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.names() == ["hits", "lat", "pool"]

    def test_merge_folds_worker_payload(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(1)
        worker = MetricsRegistry()
        worker.counter("hits").inc(2)
        worker.histogram("lat", buckets=[1.0]).observe(0.2)
        parent.merge(worker.to_dict())
        assert parent.counter("hits").value == 3.0
        assert parent.histogram("lat", buckets=[1.0]).count == 1

    def test_summaries_mix_scalars_and_digests(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        summaries = registry.summaries()
        assert summaries["hits"] == 2.0
        assert summaries["lat"]["count"] == 1

    def test_delta_since_reports_changes_and_elides_zeros(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.counter("misses").inc(1)
        registry.histogram("lat", buckets=[1.0]).observe(0.5)
        before = registry.to_dict()
        registry.counter("hits").inc(3)
        registry.histogram("lat", buckets=[1.0]).observe(0.25)
        registry.gauge("pool").set(8)
        delta = registry.delta_since(before)
        assert delta["hits"] == 3.0
        assert "misses" not in delta  # unchanged → elided
        assert delta["lat"] == {"count": 1, "sum": 0.25}
        assert delta["pool"] == 8.0

    def test_delta_since_empty_snapshot_is_full_state(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        assert registry.delta_since({}) == {"hits": 2.0}


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("store.hit").inc(5)
        registry.gauge("pool-size").set(2)
        text = prometheus_text(registry.to_dict())
        assert "# TYPE repro_store_hit counter" in text
        assert "repro_store_hit 5" in text
        assert "repro_pool_size 2" in text  # dots and dashes mangled

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=[1.0, 2.0])
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        text = prometheus_text(registry.to_dict())
        assert '_bucket{le="1"} 1' in text
        assert '_bucket{le="2"} 2' in text
        assert '_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text({}) == ""
