"""CLI surface of the telemetry subsystem: trace, stats, flags, columns."""

import json

from repro.cli import main

TASK_FLAGS = [
    "--task", "adult",
    "--model", "logistic",
    "--n-clients", "3",
    "--scale", "tiny",
    "--seed", "0",
    "--algorithms", "MC-Shapley,IPSS",
]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def _run_values(run_dir):
    """cell id → value vector for every done cell, read from the result files."""
    manifest = json.loads((run_dir / "manifest.json").read_text())
    values = {}
    for cell_id, cell in manifest["cells"].items():
        if cell.get("status") != "done":
            continue
        payload = json.loads((run_dir / cell["result_file"]).read_text())
        values[cell_id] = payload["result"]["values"]
    assert values
    return values


def finished_run(capsys, tmp_path, *extra):
    run_dir = str(tmp_path / "run")
    code, _ = run_cli(
        capsys,
        "run", "--run-dir", run_dir,
        "--store", str(tmp_path / "store.sqlite"),
        *TASK_FLAGS, *extra,
    )
    assert code == 0
    return run_dir


class TestTraceCommand:
    def test_renders_span_tree_and_critical_path(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "trace", run_dir)
        assert code == 0
        assert "pipeline.run" in out
        assert "pipeline.cell" in out
        assert "oracle.batch" in out
        assert "critical path:" in out

    def test_json_output_nests_spans(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "trace", run_dir, "--json")
        payload = json.loads(out)
        assert code == 0
        (root,) = payload["spans"]
        assert root["name"] == "pipeline.run"
        assert {child["name"] for child in root["children"]} == {"pipeline.cell"}
        assert payload["critical_path"][0]["name"] == "pipeline.run"

    def test_max_children_collapses_siblings(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "trace", run_dir, "--max-children", "1")
        assert code == 0
        assert "more," in out

    def test_missing_journal_is_a_clean_error(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path, "--no-telemetry")
        code, _ = run_cli(capsys, "trace", run_dir)
        assert code == 2


class TestStatsCommand:
    def test_renders_metric_table(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "stats", run_dir)
        assert code == 0
        assert "utility.eval_seconds" in out
        assert "executor.batch_size" in out
        assert "p99" in out

    def test_json_output_is_summaries(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "stats", run_dir, "--json")
        payload = json.loads(out)
        assert code == 0
        assert payload["utility.eval_seconds"]["count"] == 8
        assert payload["store.miss"] == 8.0

    def test_prometheus_export(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "stats", run_dir, "--prometheus")
        assert code == 0
        assert "# TYPE repro_utility_eval_seconds histogram" in out
        assert 'repro_utility_eval_seconds_bucket{le="+Inf"} 8' in out

    def test_missing_journal_is_a_clean_error(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "stats", str(tmp_path / "never-ran"))
        assert code == 2


class TestNoTelemetryFlag:
    def test_flag_leaves_no_telemetry_dir(self, capsys, tmp_path):
        run_dir = finished_run(capsys, tmp_path, "--no-telemetry")
        assert not (tmp_path / "run" / "telemetry").exists()
        assert (tmp_path / "run" / "manifest.json").exists()

    def test_default_writes_a_journal(self, capsys, tmp_path):
        finished_run(capsys, tmp_path)
        assert (tmp_path / "run" / "telemetry" / "journal.jsonl").exists()

    def test_values_identical_with_and_without(self, capsys, tmp_path):
        """The CLI face of fingerprint neutrality (CI re-checks via smoke)."""
        for name, extra in (("on", ()), ("off", ("--no-telemetry",))):
            code, _ = run_cli(
                capsys,
                "run", "--run-dir", str(tmp_path / name), *TASK_FLAGS,
                *extra, "--json",
            )
            assert code == 0
        assert _run_values(tmp_path / "on") == _run_values(tmp_path / "off")


class TestReportAccounting:
    def test_human_report_prints_accounting_line(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--store", str(tmp_path / "store.sqlite"), *TASK_FLAGS,
        )
        assert code == 0
        assert "accounting:" in out
        assert "hit-rate" in out
        assert "batches serial:" in out

    def test_json_report_carries_accounting_block(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"), *TASK_FLAGS, "--json",
        )
        report = json.loads(out)
        accounting = report["accounting"]
        assert code == 0
        assert accounting["evaluations"] == report["fl_trainings"]
        assert accounting["store_hits"] == report["store_hits"]
        assert accounting["batch_counts"].get("serial", 0) > 0


class TestStoreStatsColumns:
    def test_per_namespace_bytes_column(self, capsys, tmp_path):
        store = str(tmp_path / "store.sqlite")
        finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "store", "stats", "--store", store)
        assert code == 0
        (row,) = [line for line in out.splitlines() if "coalitions" in line]
        assert "bytes" in row

    def test_json_summary_gains_namespace_bytes(self, capsys, tmp_path):
        store = str(tmp_path / "store.sqlite")
        finished_run(capsys, tmp_path)
        code, out = run_cli(capsys, "store", "stats", "--store", store, "--json")
        summary = json.loads(out)
        assert code == 0
        assert set(summary["namespace_bytes"]) == set(summary["namespaces"])
        assert all(size > 0 for size in summary["namespace_bytes"].values())
