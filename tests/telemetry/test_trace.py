"""Tests for span tracing and the Telemetry handle."""

import pickle

import pytest

from repro.telemetry import (
    NULL_SPAN,
    RunJournal,
    Telemetry,
    TracedEvaluator,
    Tracer,
    journal_path,
    read_journal,
)


class TestTracer:
    def test_spans_nest_via_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records  # children finish (emit) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = tracer.records
        assert a["parent"] == parent["span"] == b["parent"]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [record["span"] for record in tracer.records]
        assert len(set(ids)) == 5

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (record,) = tracer.records
        assert record["status"] == "error"
        assert record["attrs"]["error_type"] == "RuntimeError"

    def test_annotate_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.annotate(discovered="late")
        (record,) = tracer.records
        assert record["attrs"] == {"fixed": 1, "discovered": "late"}

    def test_durations_are_positive(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert tracer.records[0]["dur_s"] >= 0.0

    def test_journal_backed_tracer_streams_to_disk(self, tmp_path):
        journal = RunJournal(journal_path(str(tmp_path)))
        tracer = Tracer(journal)
        with tracer.span("s"):
            pass
        journal.close()
        assert tracer.records == []
        assert read_journal(str(tmp_path))[0]["name"] == "s"


class TestTelemetryHandle:
    def test_disabled_handle_is_a_no_op(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.span("s") is NULL_SPAN
        telemetry.count("c")
        telemetry.observe("h", 1.0)
        telemetry.set_gauge("g", 2.0)
        assert telemetry.snapshot() == {}

    def test_null_span_supports_the_span_protocol(self):
        with NULL_SPAN as span:
            assert span.annotate(anything=1) is span

    def test_in_memory_handle_buffers_spans(self):
        telemetry = Telemetry.in_memory()
        with telemetry.span("s"):
            telemetry.count("c", 2)
        assert telemetry.tracer.records[0]["name"] == "s"
        assert telemetry.snapshot()["c"]["value"] == 2.0
        telemetry.flush()  # journal-less flush is a harmless no-op
        telemetry.close()

    def test_for_run_dir_flush_writes_metrics_record(self, tmp_path):
        with Telemetry.for_run_dir(str(tmp_path)) as telemetry:
            telemetry.count("c")
        records = read_journal(str(tmp_path))
        metrics = [r for r in records if r["event"] == "metrics"]
        assert metrics and metrics[-1]["registry"]["c"]["value"] == 1.0

    def test_delta_since_flows_through_the_handle(self):
        telemetry = Telemetry.in_memory()
        telemetry.count("c")
        before = telemetry.snapshot()
        telemetry.count("c", 4)
        assert telemetry.delta_since(before) == {"c": 4.0}


class TestWorkerEvaluator:
    def test_wrap_passes_through_without_journal(self):
        telemetry = Telemetry.in_memory()
        evaluator = _double
        assert telemetry.wrap_worker_evaluator(evaluator) is evaluator

    def test_wrap_passes_through_when_disabled(self, tmp_path):
        telemetry = Telemetry.for_run_dir(str(tmp_path))
        telemetry.enabled = False
        assert telemetry.wrap_worker_evaluator(_double) is _double
        telemetry.close()

    def test_traced_evaluator_preserves_values_and_emits_spans(self, tmp_path):
        journal = RunJournal(journal_path(str(tmp_path)))
        traced = TracedEvaluator(_double, journal, parent_id="abc.1")
        assert traced(frozenset({0, 1})) == 4.0
        journal.close()
        (record,) = read_journal(str(tmp_path))
        assert record["name"] == "worker.eval"
        assert record["parent"] == "abc.1"
        assert record["attrs"]["coalition_size"] == 2

    def test_traced_evaluator_records_errors_and_reraises(self, tmp_path):
        journal = RunJournal(journal_path(str(tmp_path)))
        traced = TracedEvaluator(_boom, journal)
        with pytest.raises(ValueError):
            traced(frozenset())
        journal.close()
        assert read_journal(str(tmp_path))[0]["status"] == "error"

    def test_traced_evaluator_is_picklable(self, tmp_path):
        journal = RunJournal(journal_path(str(tmp_path)))
        traced = TracedEvaluator(_double, journal, parent_id="abc.1")
        clone = pickle.loads(pickle.dumps(traced))
        assert clone(frozenset({2})) == 2.0
        assert clone.parent_id == "abc.1"
        journal.close()


def _double(coalition):
    return 2.0 * len(coalition)


def _boom(coalition):
    raise ValueError("bad coalition")
