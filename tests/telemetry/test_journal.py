"""Tests for the process-safe JSONL run journal."""

import json
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.telemetry import (
    JOURNAL_NAME,
    TELEMETRY_DIR,
    RunJournal,
    journal_path,
    read_journal,
)


class TestJournalPath:
    def test_lives_under_the_telemetry_dir(self, tmp_path):
        path = journal_path(str(tmp_path / "run"))
        assert TELEMETRY_DIR in path
        assert path.endswith(JOURNAL_NAME)


class TestRunJournal:
    def test_write_read_roundtrip(self, tmp_path):
        path = journal_path(str(tmp_path))
        with RunJournal(path) as journal:
            journal.write({"event": "span", "name": "a"})
            journal.write({"event": "metrics", "registry": {}})
        records = read_journal(path)
        assert [record["event"] for record in records] == ["span", "metrics"]

    def test_read_accepts_run_dir_or_file(self, tmp_path):
        with RunJournal(journal_path(str(tmp_path))) as journal:
            journal.write({"event": "span"})
        assert read_journal(str(tmp_path)) == read_journal(journal_path(str(tmp_path)))

    def test_missing_journal_mentions_the_flag(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no-telemetry"):
            read_journal(str(tmp_path / "never-ran"))

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = journal_path(str(tmp_path))
        with RunJournal(path) as journal:
            journal.write({"event": "span", "name": "good"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn line\n")
            handle.write(json.dumps({"event": "span", "name": "also-good"}) + "\n")
        names = [record["name"] for record in read_journal(path)]
        assert names == ["good", "also-good"]

    def test_pickles_as_path_only(self, tmp_path):
        path = journal_path(str(tmp_path))
        journal = RunJournal(path)
        journal.write({"event": "span", "name": "before-pickle"})
        clone = pickle.loads(pickle.dumps(journal))
        assert clone.path == journal.path
        clone.write({"event": "span", "name": "from-clone"})
        clone.close()
        journal.close()
        names = {record["name"] for record in read_journal(path)}
        assert names == {"before-pickle", "from-clone"}

    def test_sibling_process_appends_interleave_whole_lines(self, tmp_path):
        path = journal_path(str(tmp_path))
        journal = RunJournal(path)
        journal.write({"event": "span", "name": "parent"})
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(_write_from_worker, [(path, i) for i in range(4)]))
        journal.close()
        records = read_journal(path)
        names = {record["name"] for record in records}
        assert names == {"parent", "w0", "w1", "w2", "w3"}
        # every line parsed — no torn interleaving
        assert len(records) == 5


def _write_from_worker(args):
    path, index = args
    with RunJournal(path) as journal:
        journal.write({"event": "span", "name": f"w{index}"})
    return index
