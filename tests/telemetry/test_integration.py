"""Telemetry end-to-end: instrumentation coverage and fingerprint neutrality.

The hard invariant of the whole subsystem is tested here at the pipeline
level: a run with telemetry attached must produce bitwise-identical values
and store keys to one without (the CI smoke gate re-checks the same thing
through the CLI).
"""

import json
import os

from repro.experiments import ExperimentPlan, TaskSpec, load_manifest, run_plan
from repro.store import SqliteUtilityStore
from repro.telemetry import Telemetry, read_journal
from repro.telemetry.report import build_span_tree, load_metrics

TINY_SPEC = TaskSpec(kind="adult", n_clients=3, model="logistic", scale="tiny", seed=0)
PLAN = ExperimentPlan(tasks=(TINY_SPEC,), algorithms=("MC-Shapley", "IPSS"))


def run_values(run_dir):
    """cell id → value vector for every done cell, from the result files."""
    manifest = load_manifest(str(run_dir))
    values = {}
    for cell_id, cell in manifest["cells"].items():
        if cell.get("status") != "done":
            continue
        with open(os.path.join(str(run_dir), cell["result_file"])) as handle:
            values[cell_id] = json.load(handle)["result"]["values"]
    assert values
    return values


def run_once(tmp_path, label, telemetry=None):
    store = SqliteUtilityStore(str(tmp_path / f"{label}.sqlite"))
    try:
        report = run_plan(
            PLAN, str(tmp_path / label), store=store, telemetry=telemetry
        )
        keys = sorted(store._keys())
    finally:
        store.close()
    return report, keys


class TestFingerprintNeutrality:
    def test_values_and_store_keys_identical_with_and_without(self, tmp_path):
        _, plain_keys = run_once(tmp_path, "plain")
        with Telemetry.for_run_dir(str(tmp_path / "traced")) as telemetry:
            _, traced_keys = run_once(tmp_path, "traced", telemetry)
        assert plain_keys == traced_keys
        plain = run_values(tmp_path / "plain")
        traced = run_values(tmp_path / "traced")
        assert plain == traced  # bitwise: exact floats through JSON round-trip

    def test_disabled_run_writes_no_journal(self, tmp_path):
        run_once(tmp_path, "plain")
        assert not os.path.exists(str(tmp_path / "plain" / "telemetry"))


class TestInstrumentationCoverage:
    def test_journal_holds_spans_and_metrics(self, tmp_path):
        with Telemetry.for_run_dir(str(tmp_path / "run")) as telemetry:
            report, _ = run_once(tmp_path, "run", telemetry)
        records = read_journal(str(tmp_path / "run"))
        roots = build_span_tree(records)
        (root,) = roots
        assert root.name == "pipeline.run"
        cell_names = [child.name for child in root.children]
        assert cell_names == ["pipeline.cell", "pipeline.cell"]
        batch_spans = [
            grandchild
            for child in root.children
            for grandchild in child.children
            if grandchild.name == "oracle.batch"
        ]
        assert batch_spans and all("backend" in s.attrs for s in batch_spans)

        registry = load_metrics(records)
        names = registry.names()
        assert "utility.eval_seconds" in names
        assert "executor.batch_size" in names
        assert "store.put_bytes" in names
        assert "snapshot.interval_seconds" in names
        evaluated = registry.histogram("utility.eval_seconds").count
        assert evaluated == report.fl_trainings

    def test_store_hits_counted_on_warm_rerun(self, tmp_path):
        store = SqliteUtilityStore(str(tmp_path / "shared.sqlite"))
        try:
            run_plan(PLAN, str(tmp_path / "cold"), store=store)
            with Telemetry.for_run_dir(str(tmp_path / "warm")) as telemetry:
                report = run_plan(
                    PLAN, str(tmp_path / "warm"), store=store, telemetry=telemetry
                )
        finally:
            store.close()
        assert report.fl_trainings == 0
        registry = load_metrics(read_journal(str(tmp_path / "warm")))
        assert registry.counter("store.hit").value == report.store_hits

    def test_manifest_cells_gain_telemetry_deltas(self, tmp_path):
        with Telemetry.for_run_dir(str(tmp_path / "run")) as telemetry:
            run_once(tmp_path, "run", telemetry)
        manifest = load_manifest(str(tmp_path / "run"))
        cells = [c for c in manifest["cells"].values() if c["status"] == "done"]
        assert cells
        for cell in cells:
            block = cell["telemetry"]
            assert block["executor.batch_size"]["count"] >= 1

    def test_manifest_cells_stay_plain_without_telemetry(self, tmp_path):
        run_once(tmp_path, "plain")
        manifest = load_manifest(str(tmp_path / "plain"))
        for cell in manifest["cells"].values():
            assert "telemetry" not in cell


class TestAccountingBlock:
    def test_report_accounting_matches_counts(self, tmp_path):
        report, _ = run_once(tmp_path, "run")
        accounting = report.to_dict()["accounting"]
        assert accounting["evaluations"] == report.fl_trainings
        assert accounting["store_hits"] == report.store_hits
        assert accounting["batch_counts"].get("serial", 0) > 0
        total = (
            accounting["evaluations"]
            + accounting["cache_hits"]
            + accounting["store_hits"]
        )
        expected = (
            (accounting["cache_hits"] + accounting["store_hits"]) / total
            if total
            else 0.0
        )
        assert accounting["cache_hit_rate"] == expected

    def test_accounting_is_json_serialisable(self, tmp_path):
        report, _ = run_once(tmp_path, "run")
        json.dumps(report.to_dict())


class TestProcessWorkerSpans:
    def test_worker_spans_flow_back_to_the_parent_journal(self, tmp_path):
        plan = ExperimentPlan(
            tasks=(TaskSpec(kind="adult", n_clients=3, model="mlp", scale="tiny"),),
            algorithms=("MC-Shapley",),
            n_workers=2,
            backend="process",
        )
        with Telemetry.for_run_dir(str(tmp_path / "run")) as telemetry:
            report = run_plan(plan, str(tmp_path / "run"), telemetry=telemetry)
        assert report.fl_trainings > 0
        records = read_journal(str(tmp_path / "run"))
        workers = [r for r in records if r.get("name") == "worker.eval"]
        assert len(workers) == report.fl_trainings
        (root,) = build_span_tree(records)
        batches = [
            grandchild
            for child in root.children
            for grandchild in child.children
            if grandchild.name == "oracle.batch"
        ]
        # worker spans nest under the batch spans that dispatched them
        assert any(
            child.name == "worker.eval"
            for batch in batches
            for child in batch.children
        )
