"""Tests for journal → span-tree/metric reconstruction and rendering."""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.report import (
    build_span_tree,
    critical_path,
    format_seconds,
    load_metrics,
    render_stats,
    render_trace,
)


def span(name, span_id, parent=None, start=0.0, dur=1.0, status="ok", attrs=None):
    record = {
        "event": "span",
        "name": name,
        "span": span_id,
        "parent": parent,
        "start": start,
        "dur_s": dur,
        "status": status,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestBuildSpanTree:
    def test_links_children_to_parents(self):
        roots = build_span_tree(
            [
                span("child", "p.2", parent="p.1", start=1.0),
                span("root", "p.1", start=0.0),
            ]
        )
        (root,) = roots
        assert root.name == "root"
        assert [child.name for child in root.children] == ["child"]

    def test_orphans_become_roots(self):
        roots = build_span_tree([span("lost", "p.9", parent="p.gone")])
        assert [root.name for root in roots] == ["lost"]

    def test_siblings_sorted_by_start(self):
        roots = build_span_tree(
            [
                span("root", "p.1"),
                span("late", "p.3", parent="p.1", start=5.0),
                span("early", "p.2", parent="p.1", start=1.0),
            ]
        )
        assert [c.name for c in roots[0].children] == ["early", "late"]

    def test_non_span_records_are_ignored(self):
        assert build_span_tree([{"event": "metrics", "registry": {}}]) == []

    def test_self_seconds_subtracts_children(self):
        roots = build_span_tree(
            [
                span("root", "p.1", dur=10.0),
                span("child", "p.2", parent="p.1", dur=4.0),
            ]
        )
        assert roots[0].self_seconds == 6.0


class TestCriticalPath:
    def test_follows_heaviest_children(self):
        roots = build_span_tree(
            [
                span("root", "p.1", dur=10.0),
                span("light", "p.2", parent="p.1", dur=2.0),
                span("heavy", "p.3", parent="p.1", dur=7.0),
                span("leaf", "p.4", parent="p.3", dur=5.0),
            ]
        )
        assert [node.name for node in critical_path(roots)] == ["root", "heavy", "leaf"]

    def test_empty_forest(self):
        assert critical_path([]) == []


class TestLoadMetrics:
    def test_last_metrics_record_wins(self):
        first = MetricsRegistry()
        first.counter("c").inc(1)
        second = MetricsRegistry()
        second.counter("c").inc(5)
        registry = load_metrics(
            [
                {"event": "metrics", "registry": first.to_dict()},
                {"event": "metrics", "registry": second.to_dict()},
            ]
        )
        assert registry.counter("c").value == 5.0

    def test_no_metrics_records_yields_empty_registry(self):
        assert len(load_metrics([span("s", "p.1")])) == 0


class TestRendering:
    def test_format_seconds_units(self):
        assert format_seconds(None) == "-"
        assert format_seconds(2.5) == "2.50s"
        assert format_seconds(0.0042).endswith("ms")
        assert format_seconds(0.0000042).endswith("µs")

    def test_render_trace_shows_tree_and_critical_path(self):
        roots = build_span_tree(
            [
                span("root", "p.1", dur=3.0, attrs={"plan": "demo"}),
                span("child", "p.2", parent="p.1", dur=1.0),
            ]
        )
        text = render_trace(roots)
        assert "root" in text and "child" in text
        assert "plan=demo" in text
        assert "critical path:" in text

    def test_render_trace_collapses_long_sibling_runs(self):
        records = [span("root", "p.0", dur=10.0)]
        records += [
            span("w", f"p.{i}", parent="p.0", start=float(i), dur=0.5)
            for i in range(1, 21)
        ]
        text = render_trace(build_span_tree(records), max_children=3)
        assert "(+17 more" in text
        assert text.count("w  ") <= 4

    def test_render_trace_marks_errors(self):
        text = render_trace(build_span_tree([span("bad", "p.1", status="error")]))
        assert "!error" in text

    def test_render_stats_formats_by_metric_family(self):
        registry = MetricsRegistry()
        registry.counter("store.hit").inc(3)
        registry.histogram("utility.eval_seconds", buckets=[1.0]).observe(0.002)
        registry.histogram("executor.batch_size", buckets=[8.0]).observe(4)
        text = render_stats(registry)
        assert "store.hit" in text
        assert "2.0ms" in text  # seconds histograms render as durations
        assert " 4 " in text  # size histograms render as plain numbers

    def test_render_stats_empty(self):
        assert "no metrics" in render_stats(MetricsRegistry())
