"""Tests for the ``repro`` command-line interface."""

import json

import pytest

from repro.cli import main

TASK_FLAGS = [
    "--task", "adult",
    "--model", "logistic",
    "--n-clients", "3",
    "--scale", "tiny",
    "--seed", "0",
    "--algorithms", "MC-Shapley,IPSS",
]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestListTasks:
    def test_lists_kinds_and_algorithms(self, capsys):
        code, out = run_cli(capsys, "list-tasks")
        assert code == 0
        assert "adult" in out and "IPSS" in out

    def test_json_output(self, capsys):
        code, out = run_cli(capsys, "list-tasks", "--json")
        payload = json.loads(out)
        assert code == 0
        assert "synthetic" in payload["tasks"]
        assert "MC-Shapley" in payload["algorithms"]


class TestRunResume:
    def test_run_twice_second_is_training_free(self, tmp_path, capsys):
        """The CLI face of the acceptance bar: rerunning a finished campaign
        against its store performs zero FL trainings."""
        store = str(tmp_path / "store.sqlite")
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run1"), "--store", store,
            *TASK_FLAGS, "--json",
        )
        assert code == 0
        first = json.loads(out)
        assert first["fl_trainings"] > 0

        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run2"), "--store", store,
            *TASK_FLAGS, "--json",
        )
        assert code == 0
        second = json.loads(out)
        assert second["fl_trainings"] == 0
        assert second["cells_run"] == 2

    def test_run_refuses_existing_dir_then_resume_flag_continues(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store.sqlite")
        run_dir = str(tmp_path / "run")
        assert run_cli(
            capsys, "run", "--run-dir", run_dir, "--store", store, *TASK_FLAGS
        )[0] == 0
        code, _ = run_cli(
            capsys, "run", "--run-dir", run_dir, "--store", store, *TASK_FLAGS
        )
        assert code == 2  # refuses to clobber
        code, out = run_cli(
            capsys,
            "run", "--run-dir", run_dir, "--store", store, *TASK_FLAGS,
            "--resume", "--json",
        )
        assert code == 0
        assert json.loads(out)["cells_resumed"] == 2

    def test_backend_flag_recorded_and_value_neutral(self, tmp_path, capsys):
        """`--backend vectorized` lands in the manifest and, sharing a store
        with a serial run, re-trains nothing — the backends agree exactly."""
        store = str(tmp_path / "store.sqlite")
        flags = [
            "--task", "synthetic", "--setup", "same-size-same-distribution",
            "--model", "mlp", "--n-clients", "3", "--scale", "tiny",
            "--algorithms", "MC-Shapley",
        ]
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "vec"), "--store", store,
            *flags, "--backend", "vectorized", "--json",
        )
        assert code == 0
        vectorized = json.loads(out)
        assert vectorized["fl_trainings"] == 8  # 2^3 coalitions trained

        manifest = json.loads((tmp_path / "vec" / "manifest.json").read_text())
        assert manifest["plan"]["backend"] == "vectorized"

        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "serial"), "--store", store,
            *flags, "--json",
        )
        serial = json.loads(out)
        assert serial["fl_trainings"] == 0  # served from the vectorized run's store
        assert serial["rows"][0]["store_hits"] == 8

    def test_unknown_backend_is_a_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "--run-dir", str(tmp_path / "run"),
                "--backend", "gpu", *TASK_FLAGS,
            ])

    def test_resume_subcommand_reads_plan_from_manifest(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        run_dir = str(tmp_path / "run")
        run_cli(capsys, "run", "--run-dir", run_dir, "--store", store, *TASK_FLAGS)
        code, out = run_cli(
            capsys, "resume", "--run-dir", run_dir, "--store", store, "--json"
        )
        assert code == 0
        report = json.loads(out)
        assert report["cells_resumed"] == 2
        assert report["fl_trainings"] == 0

    def test_config_file_plan(self, tmp_path, capsys):
        config = tmp_path / "plan.json"
        config.write_text(
            json.dumps(
                {
                    "name": "demo",
                    "algorithms": ["MC-Shapley"],
                    "tasks": [
                        {
                            "kind": "adult",
                            "model": "logistic",
                            "n_clients": 3,
                            "scale": "tiny",
                        }
                    ],
                }
            )
        )
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--config", str(config), "--json",
        )
        assert code == 0
        assert json.loads(out)["cells_run"] == 1

    def test_unknown_algorithm_is_a_clean_error(self, tmp_path, capsys):
        code, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--task", "adult", "--algorithms", "Quantum-SV",
        )
        assert code == 2


class TestScenarioCommands:
    def test_scenarios_list(self, capsys):
        code, out = run_cli(capsys, "scenarios", "list")
        assert code == 0
        assert "free-rider" in out and "sybil-attack" in out

    def test_scenarios_list_json(self, capsys):
        code, out = run_cli(capsys, "scenarios", "list", "--json")
        payload = json.loads(out)
        assert code == 0
        assert "label-flippers" in payload

    def test_scenarios_show(self, capsys):
        code, out = run_cli(capsys, "scenarios", "show", "mixed-adversaries")
        assert code == 0
        assert "adversaries" in out and "free_rider" in out

    def test_scenarios_show_unknown_is_clean_error(self, capsys):
        code, _ = run_cli(capsys, "scenarios", "show", "nope")
        assert code == 2

    def test_run_scenario_emits_robustness_report(self, tmp_path, capsys):
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--store", str(tmp_path / "store.sqlite"),
            "--scenario", "free-rider",
            "--algorithms", "MC-Shapley",
            "--scale", "tiny", "--json",
        )
        assert code == 0
        report = json.loads(out)
        row = report["rows"][0]
        assert row["scenario"] == "free-rider"
        assert row["strictly_last"] is True
        assert row["precision_at_k"] == 1.0
        assert report["fl_trainings"] > 0

    def test_run_scenario_warm_rerun_trains_nothing(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        args = [
            "--store", store, "--scenario", "free-rider",
            "--algorithms", "MC-Shapley,IPSS", "--scale", "tiny", "--json",
        ]
        run_cli(capsys, "run", "--run-dir", str(tmp_path / "run1"), *args)
        code, out = run_cli(capsys, "run", "--run-dir", str(tmp_path / "run2"), *args)
        assert code == 0
        assert json.loads(out)["fl_trainings"] == 0

    def test_run_scenario_rejects_config(self, tmp_path, capsys):
        code, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--scenario", "free-rider", "--config", "plan.json",
        )
        assert code == 2

    def test_run_scenario_rejects_task_shaping_flags(self, tmp_path, capsys):
        """Flags the scenario definition overrides must error, not silently
        do nothing."""
        code, _ = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--scenario", "free-rider", "--task", "adult", "--n-clients", "8",
        )
        assert code == 2

    def test_run_scenario_table_output(self, tmp_path, capsys):
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--scenario", "free-rider",
            "--algorithms", "MC-Shapley", "--scale", "tiny",
        )
        assert code == 0
        assert "strictly_last" in out and "free-rider" in out

    def test_config_plan_with_inline_scenario_task(self, tmp_path, capsys):
        config = tmp_path / "plan.json"
        config.write_text(
            json.dumps(
                {
                    "algorithms": ["MC-Shapley"],
                    "tasks": [
                        {
                            "kind": "scenario",
                            "model": "logistic",
                            "scale": "tiny",
                            "scenario": {
                                "name": "my-rider",
                                "n_clients": 3,
                                "behaviors": [
                                    {"kind": "free_rider", "clients": [2]}
                                ],
                            },
                        }
                    ],
                }
            )
        )
        code, out = run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"),
            "--config", str(config), "--json",
        )
        assert code == 0
        report = json.loads(out)
        assert report["cells_run"] == 1
        assert report["rows"][0]["task"] == "scenario/my-rider/logistic/n=3"


class TestStoreCommands:
    def test_stats_and_gc(self, tmp_path, capsys):
        store = str(tmp_path / "store.sqlite")
        run_cli(
            capsys,
            "run", "--run-dir", str(tmp_path / "run"), "--store", store, *TASK_FLAGS,
        )
        code, out = run_cli(capsys, "store", "stats", "--store", store, "--json")
        assert code == 0
        summary = json.loads(out)
        assert summary["entries"] == 8  # all coalitions of a 3-client task
        assert len(summary["namespaces"]) == 1

        code, out = run_cli(capsys, "store", "gc", "--store", store, "--json")
        assert code == 0
        assert json.loads(out)["kept"] == 8

    def test_stats_missing_store_fails_cleanly(self, tmp_path, capsys):
        """A typo'd path must error, not conjure a fresh empty store."""
        missing = tmp_path / "stroe.sqlite"
        code, _ = run_cli(capsys, "store", "stats", "--store", str(missing), "--json")
        assert code == 2
        assert not missing.exists()  # inspection left no stray store behind
        code, _ = run_cli(capsys, "store", "gc", "--store", str(missing), "--json")
        assert code == 2
